//! The open-loop overload experiments — an extension beyond the paper's
//! evaluation.
//!
//! Every experiment the paper reports is closed-loop: clients resubmit
//! the instant the engine commits, so the system sits exactly at
//! saturation and overload behaviour is never observed.  These two
//! experiments drive the same four designs *open loop* — Poisson arrivals
//! through a bounded admission queue — in the regime the paper's
//! coordination-free design is supposed to win:
//!
//! * **overload01** — goodput, p99 latency, and rejection rate vs offered
//!   load from 0.5× to 3× each design's measured saturation throughput.
//!   A well-behaved design degrades gracefully: goodput holds near
//!   capacity past saturation while the admission queue sheds the excess.
//! * **overload02** — a burst-recovery timeline: steady load at 70% of
//!   saturation, a 2.5× burst, then back to 70%.  The interesting part is
//!   the recovery segment — whether goodput returns to the baseline once
//!   the backlog drains.
//!
//! Offered rates are calibrated *per design* from a closed-loop
//! measurement at the same scale, so "1× load" means the same thing for
//! the centralized baseline and for ATraPos even though their capacities
//! differ by an order of magnitude.

use crate::harness::Scale;
use crate::report::{fmt, write_scenario_json, FigureResult};
use atrapos_engine::scenario::{Scenario, ScenarioEvent, ScenarioOutcome};
use atrapos_engine::sweep::{default_threads, run_sweep, SweepJob};
use atrapos_engine::RunMeta;

use super::ycsb::{series_rows, ycsb02_workload, ycsb_designs, ycsb_job, ycsb_meta};

/// The experiment identifiers this module provides.
pub const OVERLOAD_IDS: &[&str] = &["overload01", "overload02"];

/// Offered-load multiples of each design's saturation throughput swept by
/// overload01.
pub const OVERLOAD_MULTIPLIERS: [f64; 5] = [0.5, 1.0, 1.5, 2.0, 3.0];

/// The admission-queue bound of both experiments: deep enough to absorb
/// scheduling jitter, shallow enough that sustained overload rejects
/// (and p99 stays a queue-bound multiple of service time, not unbounded).
pub const ADMISSION_BOUND: u64 = 128;

/// The provenance record of the overload runs (the YCSB 4×4 machine).
fn overload_meta() -> RunMeta {
    ycsb_meta()
}

/// Closed-loop saturation throughput of every design, in table order —
/// the per-design "1×" the open-loop rates are multiples of.  Measured
/// with the exact YCSB-A uniform workload the open-loop jobs serve.
fn saturation_tps(scale: &Scale) -> Vec<(&'static str, f64)> {
    let jobs: Vec<SweepJob> = ycsb_designs(scale)
        .into_iter()
        .map(|(label, spec)| {
            ycsb_job(
                format!("overload-calibrate/{label}"),
                scale,
                ycsb02_workload(scale),
                spec,
                &Scenario::new("overload-calibration", scale.measure_secs),
            )
        })
        .collect();
    run_sweep(jobs, default_threads())
        .into_iter()
        .zip(ycsb_designs(scale))
        .map(|(r, (label, _))| {
            let outcome = r
                .outcome
                .unwrap_or_else(|e| panic!("calibration job '{}' failed: {e}", r.name));
            (label, outcome.segments[0].stats.throughput_tps)
        })
        .collect()
}

/// An open-loop serving scenario: bound and rate installed at t = 0, one
/// measured segment of `duration_secs`.
fn serving_scenario(name: impl Into<String>, duration_secs: f64, rate_tps: f64) -> Scenario {
    Scenario::new(name, duration_secs)
        .starting_as("serve")
        .at_unlabelled(
            0.0,
            ScenarioEvent::SetAdmissionBound {
                bound: ADMISSION_BOUND,
            },
        )
        .at_unlabelled(0.0, ScenarioEvent::SetArrivalRate { rate_tps })
}

/// overload01: goodput, p99 latency, and rejection rate vs offered load
/// (0.5×–3× of each design's own saturation) on all four designs.
pub fn overload01_load_sweep(scale: &Scale) -> FigureResult {
    let saturation = saturation_tps(scale);
    let mut header = vec!["offered (x sat)".to_string()];
    for (label, _) in &saturation {
        header.push(format!("{label} goodput (KTPS)"));
    }
    for (label, _) in &saturation {
        header.push(format!("{label} p99 (us)"));
    }
    for (label, _) in &saturation {
        header.push(format!("{label} rejected (%)"));
    }
    let mut fig = FigureResult::new(
        "overload01",
        "Open-loop overload: goodput, p99, and rejection vs offered load",
        header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let designs = ycsb_designs(scale);
    let mut jobs = Vec::new();
    for mult in OVERLOAD_MULTIPLIERS {
        for ((label, spec), (_, sat)) in designs.iter().zip(&saturation) {
            jobs.push(ycsb_job(
                format!("overload01/x{mult}/{label}"),
                scale,
                ycsb02_workload(scale),
                spec.clone(),
                &serving_scenario("overload01-load-sweep", scale.measure_secs, mult * sat),
            ));
        }
    }
    let outcomes: Vec<ScenarioOutcome> = run_sweep(jobs, default_threads())
        .into_iter()
        .map(|r| {
            r.outcome
                .unwrap_or_else(|e| panic!("overload01 job '{}' failed: {e}", r.name))
        })
        .collect();
    for (i, mult) in OVERLOAD_MULTIPLIERS.iter().enumerate() {
        let chunk = &outcomes[i * designs.len()..(i + 1) * designs.len()];
        let mut row = vec![format!("{mult}")];
        for o in chunk {
            row.push(fmt(o.segments[0].stats.throughput_tps / 1e3));
        }
        for o in chunk {
            row.push(fmt(o.segments[0].stats.p99_latency_us));
        }
        for o in chunk {
            let s = &o.segments[0].stats;
            let pct = if s.offered == 0 {
                0.0
            } else {
                100.0 * s.rejected as f64 / s.offered as f64
            };
            row.push(fmt(pct));
        }
        fig.push_row(row);
    }
    fig.note(format!(
        "YCSB-A uniform over {} records on the 4x4 machine; Poisson arrivals through a \
         {ADMISSION_BOUND}-slot admission queue; offered rate is the multiple of each \
         design's own closed-loop saturation, so 1x means the same relative stress for \
         every design; p99 includes queueing delay",
        scale.ycsb_records
    ));
    fig.note(
        "expected shape: below saturation nothing is rejected and goodput tracks the \
         offered rate; past saturation goodput plateaus at capacity (graceful \
         degradation) while the queue sheds the excess and p99 saturates at the \
         queue-bound latency instead of growing without bound",
    );
    write_scenario_json(
        "overload01",
        overload_meta(),
        &outcomes.iter().collect::<Vec<_>>(),
    );
    fig.set_meta(overload_meta());
    fig
}

/// The overload02 burst timeline for one design: 0.7× saturation, a 2.5×
/// burst for half a phase, then 0.7× again for the recovery window.
pub fn overload02_scenario(scale: &Scale, saturation_tps: f64) -> Scenario {
    let p = scale.phase_secs;
    Scenario::new("overload02-burst-recovery", 3.0 * p)
        .starting_as("baseline")
        .at_unlabelled(
            0.0,
            ScenarioEvent::SetAdmissionBound {
                bound: ADMISSION_BOUND,
            },
        )
        .at_unlabelled(
            0.0,
            ScenarioEvent::SetArrivalRate {
                rate_tps: 0.7 * saturation_tps,
            },
        )
        .at(
            p,
            "burst",
            ScenarioEvent::SetArrivalRate {
                rate_tps: 2.5 * saturation_tps,
            },
        )
        .at(
            1.5 * p,
            "recovery",
            ScenarioEvent::SetArrivalRate {
                rate_tps: 0.7 * saturation_tps,
            },
        )
}

/// The overload02 lab jobs, one per design in table order, with rates
/// calibrated to each design's saturation.
pub fn overload02_jobs(scale: &Scale) -> Vec<SweepJob> {
    saturation_tps(scale)
        .into_iter()
        .zip(ycsb_designs(scale))
        .map(|((label, sat), (_, spec))| {
            ycsb_job(
                format!("overload02/{label}"),
                scale,
                ycsb02_workload(scale),
                spec,
                &overload02_scenario(scale, sat),
            )
        })
        .collect()
}

/// overload02: the burst-recovery timeline (goodput in KTPS over time)
/// across all four designs.
pub fn overload02_burst_recovery(scale: &Scale) -> FigureResult {
    let designs = ycsb_designs(scale);
    let mut header = vec!["time (s)"];
    header.extend(designs.iter().map(|(label, _)| *label));
    let mut fig = FigureResult::new(
        "overload02",
        "Burst recovery under open-loop load (goodput, KTPS over time)",
        header,
    );
    let outcomes: Vec<ScenarioOutcome> = run_sweep(overload02_jobs(scale), default_threads())
        .into_iter()
        .map(|r| {
            r.outcome
                .unwrap_or_else(|e| panic!("overload02 job '{}' failed: {e}", r.name))
        })
        .collect();
    let series: Vec<Vec<_>> = outcomes.iter().map(|o| o.time_series()).collect();
    for row in series_rows(&series) {
        fig.push_row(row);
    }
    fig.note(format!(
        "open-loop Poisson arrivals at 0.7x each design's saturation, a 2.5x burst for \
         {:.2} virtual s, then 0.7x again; {ADMISSION_BOUND}-slot admission queue",
        0.5 * scale.phase_secs
    ));
    fig.note(
        "expected shape: during the burst goodput is pinned at capacity and the queue \
         rejects the excess; once the rate drops back, the backlog drains and goodput \
         returns to the baseline level within the recovery window",
    );
    write_scenario_json(
        "overload02",
        overload_meta(),
        &outcomes.iter().collect::<Vec<_>>(),
    );
    fig.set_meta(overload_meta());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        let mut s = Scale::quick();
        s.ycsb_records = 4_000;
        s.measure_secs = 0.004;
        s.phase_secs = 0.004;
        s.interval_min_secs = 0.002;
        s.interval_max_secs = 0.008;
        s
    }

    #[test]
    fn serving_scenarios_are_valid_and_serializable() {
        let scenario = serving_scenario("t", 0.01, 50_000.0);
        scenario.validate().expect("serving timeline is valid");
        assert_eq!(Scenario::from_json(&scenario.to_json()).unwrap(), scenario);
        let burst = overload02_scenario(&tiny_scale(), 100_000.0);
        burst.validate().expect("burst timeline is valid");
        assert_eq!(Scenario::from_json(&burst.to_json()).unwrap(), burst);
    }

    #[test]
    fn overload01_produces_one_row_per_multiplier_and_conserves() {
        let fig = overload01_load_sweep(&tiny_scale());
        assert_eq!(fig.rows.len(), OVERLOAD_MULTIPLIERS.len());
        // 1 multiplier column + 3 metric groups × 4 designs.
        assert_eq!(fig.header.len(), 13);
        // Goodput is positive everywhere; rejection percentages are
        // percentages.
        for c in 1..=4 {
            for v in fig.column(c) {
                assert!(v > 0.0, "column {c} holds a non-positive goodput");
            }
        }
        for c in 9..=12 {
            for v in fig.column(c) {
                assert!((0.0..=100.0).contains(&v));
            }
        }
        // Past saturation the queue must actually reject: at 3x offered
        // load a 128-slot queue cannot absorb the excess for any design.
        let last = fig.rows.last().expect("3x row");
        let any_rejecting = (9..=12).any(|c| last[c].parse::<f64>().unwrap_or(0.0) > 0.0);
        assert!(any_rejecting, "3x saturation rejected nothing: {last:?}");
    }

    #[test]
    fn overload02_runs_three_labelled_segments_on_every_design() {
        let scale = tiny_scale();
        for r in run_sweep(overload02_jobs(&scale), 2) {
            let outcome = r.outcome.expect("overload02 job runs");
            let labels: Vec<&str> = outcome.segments.iter().map(|s| s.label.as_str()).collect();
            assert_eq!(labels, vec!["baseline", "burst", "recovery"]);
            for seg in &outcome.segments {
                let s = &seg.stats;
                assert!(s.open_loop, "{}/{} is not open loop", r.name, seg.label);
                assert_eq!(s.offered, s.admitted + s.rejected);
                assert_eq!(
                    s.admitted + s.queue_depth_start,
                    s.committed + s.aborted + s.queue_depth_end,
                    "{}/{}: queue accounting must balance",
                    r.name,
                    seg.label
                );
                assert_eq!(s.latency_histogram.count(), s.committed);
            }
        }
    }
}
