//! Ablation experiments.
//!
//! These are not figures of the paper; they isolate the design choices that
//! DESIGN.md calls out and exercise the §VII future-work extension:
//!
//! * `abl01` — what if the hardware were uniform?  The ATraPos advantage
//!   over PLP comes entirely from the non-uniform interconnect, so it must
//!   vanish under the uniform cost model.
//! * `abl02` — oversaturation: the penalty of hosting several partitions of
//!   different tables on the same core (the effect that motivates the
//!   workload-aware partition counts of Figure 6).
//! * `abl03` — sub-partitions per partition: the monitoring granule trades
//!   adaptation quality against monitoring state (the paper settles on 10).
//! * `abl04` — the shared-nothing sharding advisor of §VII: on a workload
//!   with shifted cross-table correlation, the advisor's plan turns almost
//!   every distributed transaction into a single-instance transaction.

use crate::harness::{measure_jobs, measurement_config, run_meta, Scale};
use crate::report::{fmt, FigureResult};
use atrapos_core::{
    advise_sharding, evaluate_sharding, AdaptiveInterval, ControllerConfig, KeyDistribution,
    KeyDomain, ShardingConfig, ShardingPlan, SubPartitionId, WorkloadStats,
};
use atrapos_engine::scenario::{Scenario, ScenarioEvent};
use atrapos_engine::sweep::{default_threads, run_sweep, SweepJob};
use atrapos_engine::workload::ensure_tables;
use atrapos_engine::{
    Action, ActionOp, AtraposConfig, DesignSpec, ExecutorConfig, Phase, TableSpec, TransactionSpec,
    Workload,
};
use atrapos_numa::{CoreId, CostModel, Machine, Topology};
use atrapos_storage::{Column, ColumnType, Database, Key, Record, Schema, TableId, Value};
use atrapos_workloads::{SimpleAb, Tatp, TatpConfig, TatpTxn};
use rand::rngs::SmallRng;
use rand::Rng;

/// Identifiers of the ablation experiments.
pub const ABLATION_IDS: &[&str] = &["abl01", "abl02", "abl03", "abl04"];

/// A controller configuration whose adaptation interval matches the
/// experiment scale.  The `ControllerConfig` default is the paper's 1–8 s
/// interval; at the reduced scale a run lasts well under a second, so an
/// unscaled controller never fires and the "adaptive" variant silently
/// degenerates to the static one (plus monitoring overhead).
fn scaled_controller(scale: &Scale) -> ControllerConfig {
    ControllerConfig {
        interval: AdaptiveInterval::new(scale.interval_min_secs, scale.interval_max_secs, 0.10),
        ..ControllerConfig::default()
    }
}

/// abl01: ATraPos vs PLP under the calibrated Westmere cost model and under
/// a hypothetical uniform interconnect.  The speedup of ATraPos over PLP
/// should collapse to ~1x when remote accesses cost the same as local ones,
/// confirming that the gains come from NUMA-awareness and not from an
/// unrelated implementation difference.
pub fn abl01_uniform_interconnect(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl01",
        "ATraPos/PLP speedup under Westmere vs. uniform interconnect costs",
        vec!["cost model", "PLP (KTPS)", "ATraPos (KTPS)", "speedup"],
    );
    let sockets = scale.max_sockets;
    let cores = scale.cores_per_socket.min(4);
    let labels = ["westmere", "uniform"];
    let mut jobs = Vec::new();
    for (label, cost) in labels
        .iter()
        .zip([CostModel::westmere(), CostModel::uniform()])
    {
        for spec in [DesignSpec::Plp, DesignSpec::atrapos()] {
            let machine = Machine::new(Topology::multisocket(sockets, cores), cost.clone());
            let mut workload = Tatp::new(TatpConfig::scaled(scale.tatp_subscribers / 4));
            workload.set_single(TatpTxn::GetSubscriberData);
            jobs.push(SweepJob::measurement(
                format!("abl01/{label}/{}", spec.label()),
                machine,
                spec,
                Box::new(workload),
                scale.measure_secs,
                measurement_config(scale.measure_secs),
            ));
        }
    }
    let results = measure_jobs(jobs);
    for (label, pair) in labels.iter().zip(results.chunks_exact(2)) {
        let (plp, atrapos) = (pair[0].throughput_tps, pair[1].throughput_tps);
        fig.push_row(vec![
            label.to_string(),
            fmt(plp / 1e3),
            fmt(atrapos / 1e3),
            fmt(atrapos / plp),
        ]);
    }
    fig.note(
        "expected shape: a clear ATraPos speedup on the Westmere model, ~1x on the uniform model",
    );
    // The cost model is the swept variable here, so the provenance names
    // both rather than claiming a single one.
    let mut meta = run_meta(sockets, cores);
    meta.cost_model = "westmere vs uniform".to_string();
    fig.set_meta(meta);
    fig
}

/// abl02: the oversubscription penalty.  The Figure 6 workload is run on
/// the naive one-partition-per-table-per-core scheme and on the ATraPos
/// layout (one partition per core in total, correlated partitions
/// co-located) while sweeping the per-extra-partition scheduling penalty:
/// with the penalty disabled the naive scheme looks artificially good, with
/// the calibrated penalty the ATraPos scheme wins as in the paper.
pub fn abl02_oversubscription(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl02",
        "Throughput (KTPS) of the naive scheme vs. oversubscription penalty",
        vec!["penalty", "naive scheme", "ATraPos scheme", "ATraPos/naive"],
    );
    let sockets = scale.max_sockets.min(4);
    let cores = scale.cores_per_socket.min(4);
    let penalties = [0.0f64, 0.2, 0.35, 0.5];
    let mut jobs = Vec::new();
    for penalty in penalties {
        for atrapos_layout in [false, true] {
            let machine =
                Machine::new(Topology::multisocket(sockets, cores), CostModel::westmere());
            let workload = SimpleAb::new(scale.micro_rows / 8);
            // A pure scheme comparison: adaptation off, only the initial
            // layout differs (the penalty itself is what is ablated).
            let initial_scheme = atrapos_layout.then(|| {
                crate::figures::partitioning::half_scheme(
                    &machine.topology,
                    &workload.table_domains(),
                    true,
                    AtraposConfig::default().sub_per_partition,
                )
            });
            let config = AtraposConfig {
                oversubscription_penalty: penalty,
                monitoring: false,
                adaptive: false,
                initial_scheme,
                ..AtraposConfig::default()
            };
            jobs.push(SweepJob::measurement(
                format!(
                    "abl02/penalty-{penalty}/{}",
                    if atrapos_layout { "atrapos" } else { "naive" }
                ),
                machine,
                DesignSpec::atrapos_with(config),
                Box::new(workload),
                scale.measure_secs,
                ExecutorConfig {
                    seed: 42,
                    default_interval_secs: scale.interval_min_secs,
                    time_series_bucket_secs: scale.measure_secs,
                },
            ));
        }
    }
    let results = measure_jobs(jobs);
    for (penalty, pair) in penalties.iter().zip(results.chunks_exact(2)) {
        let (naive, atrapos) = (pair[0].throughput_tps, pair[1].throughput_tps);
        fig.push_row(vec![
            fmt(*penalty),
            fmt(naive / 1e3),
            fmt(atrapos / 1e3),
            fmt(atrapos / naive),
        ]);
    }
    fig.note(
        "expected shape: the ATraPos layout's advantage grows with the oversubscription penalty",
    );
    fig.set_meta(run_meta(sockets, cores));
    fig
}

/// abl03: sub-partitions per partition (the monitoring granule).  ATraPos
/// adapts to a sudden hotspot (Figure 11's skew) with 2, 10, and 40
/// sub-partitions per partition: too few sub-partitions cannot isolate the
/// hot range, more sub-partitions cost more monitoring state for little
/// additional benefit.
pub fn abl03_sub_partition_granularity(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl03",
        "Throughput (KTPS) after adapting to a hotspot vs. sub-partitions per partition",
        vec![
            "sub-partitions",
            "before skew",
            "after adaptation",
            "repartitions",
        ],
    );
    // One lab job per granularity; the skew arrives as a timeline event
    // after the first phase, and the three post-skew phases are measurement
    // boundaries (the same run_for/reconfigure sequence the hand-rolled
    // loop performed).
    let p = scale.phase_secs;
    let sub_pers = [2usize, 10, 40];
    let jobs = sub_pers
        .iter()
        .map(|&sub_per| {
            let machine = Machine::new(
                Topology::multisocket(scale.max_sockets.min(4), scale.cores_per_socket.min(4)),
                CostModel::westmere(),
            );
            let mut workload = Tatp::new(TatpConfig::scaled(scale.tatp_subscribers / 4));
            workload.set_single(TatpTxn::GetSubscriberData);
            let config = AtraposConfig {
                sub_per_partition: sub_per,
                controller: scaled_controller(scale),
                ..AtraposConfig::default()
            };
            // The Figure 11 hotspot: 50% of the requests on 20% of the data.
            let scenario = Scenario::new(format!("abl03-sub-{sub_per}"), 4.0 * p)
                .starting_as("before")
                .at(
                    p,
                    "skewed",
                    ScenarioEvent::SetSkew {
                        distribution: KeyDistribution::Hotspot {
                            data_fraction: 0.2,
                            access_fraction: 0.5,
                        },
                    },
                )
                .at(2.0 * p, "skewed", ScenarioEvent::Measure)
                .at(3.0 * p, "skewed", ScenarioEvent::Measure);
            SweepJob {
                name: format!("abl03/sub-{sub_per}"),
                machine,
                design: DesignSpec::atrapos_with(config),
                workload: Box::new(workload),
                scenario,
                config: ExecutorConfig {
                    seed: 42,
                    default_interval_secs: scale.interval_min_secs,
                    time_series_bucket_secs: scale.interval_min_secs,
                },
            }
        })
        .collect();
    let results = run_sweep(jobs, default_threads());
    for (sub_per, result) in sub_pers.iter().zip(results) {
        let outcome = result.outcome.expect("TATP supports distribution changes");
        let before = outcome.segments[0].stats.throughput_tps;
        let post_skew = &outcome.segments[1..];
        let after = post_skew.last().map_or(0.0, |s| s.stats.throughput_tps);
        let repartitions: u64 = post_skew.iter().map(|s| s.stats.repartitions).sum();
        fig.push_row(vec![
            sub_per.to_string(),
            fmt(before / 1e3),
            fmt(after / 1e3),
            repartitions.to_string(),
        ]);
    }
    fig.note("expected shape: the coarsest granule adapts worst; 10 sub-partitions (the paper's choice) captures most of the benefit");
    fig.set_meta(run_meta(
        scale.max_sockets.min(4),
        scale.cores_per_socket.min(4),
    ));
    fig
}

// ----------------------------------------------------------------------
// abl04: the shared-nothing sharding advisor (§VII)
// ----------------------------------------------------------------------

/// A two-table workload whose cross-table correlation is *shifted*: the
/// transaction reads `A[k]` and updates `B[(k + rows/2) % rows]`.  Classic
/// range sharding therefore turns almost every transaction into a
/// distributed transaction, while a workload-aware sharding can co-locate
/// the correlated halves.
#[derive(Debug, Clone)]
struct ShiftedAb {
    rows: i64,
}

impl ShiftedAb {
    fn partner(&self, k: i64) -> i64 {
        (k + self.rows / 2) % self.rows
    }

    fn schema(name: &str) -> Schema {
        Schema::new(
            name,
            vec![
                Column::new("pk", ColumnType::Int),
                Column::new("val", ColumnType::Int),
            ],
            vec![0],
        )
    }
}

impl Workload for ShiftedAb {
    fn name(&self) -> &str {
        "shifted-ab"
    }

    fn tables(&self) -> Vec<TableSpec> {
        (0..2)
            .map(|t| TableSpec {
                id: TableId(t),
                schema: Self::schema(if t == 0 { "A" } else { "B" }),
                domain: KeyDomain::new(0, self.rows),
                rows: self.rows as u64,
            })
            .collect()
    }

    fn populate(&self, db: &mut Database, filter: &dyn Fn(TableId, &Key) -> bool) {
        ensure_tables(self, db);
        for t in 0..2u32 {
            let table = db.table_mut(TableId(t)).expect("table exists");
            for i in 0..self.rows {
                let key = Key::int(i);
                if filter(TableId(t), &key) {
                    table
                        .load(Record::new(vec![Value::Int(i), Value::Int(0)]))
                        .expect("unique keys");
                }
            }
        }
    }

    fn next_transaction(&mut self, rng: &mut SmallRng, _client: CoreId) -> TransactionSpec {
        let k = rng.gen_range(0..self.rows);
        TransactionSpec::new(
            "shifted-ab",
            vec![Phase::new(vec![
                Action::new(ActionOp::Read {
                    table: TableId(0),
                    key: Key::int(k),
                }),
                Action::new(ActionOp::Increment {
                    table: TableId(1),
                    key: Key::int(self.partner(k)),
                    column: 1,
                    delta: 1,
                }),
            ])],
        )
    }
}

/// Build the workload trace the advisor consumes by sampling the workload's
/// transaction generator — the shared-nothing engine has no built-in
/// monitoring, so the trace is collected offline, exactly as trace-driven
/// partitioning tools do (Schism, Horticulture).
pub fn sample_shifted_trace(rows: i64, n_sub: usize, samples: usize) -> WorkloadStats {
    let mut workload = ShiftedAb { rows };
    let domain = KeyDomain::new(0, rows);
    let mut stats = WorkloadStats::new();
    stats.declare_table(TableId(0), n_sub);
    stats.declare_table(TableId(1), n_sub);
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..samples {
        let spec = workload.next_transaction(&mut rng, CoreId(0));
        let mut subs = Vec::new();
        for action in spec.phases.iter().flat_map(|p| &p.actions) {
            let sub = SubPartitionId::new(
                action.op.table(),
                domain.sub_partition_of(action.op.routing_key_head(), n_sub),
            );
            stats.record_action(sub, 100.0);
            subs.push(sub);
        }
        if subs.len() == 2 {
            stats.record_sync(subs[0], subs[1], 64);
        }
        stats.record_transaction();
    }
    stats
}

/// abl04: measured throughput and distributed-transaction count of the
/// coarse shared-nothing deployment under (a) classic range sharding and
/// (b) the sharding plan produced by the §VII advisor, on the shifted
/// correlated workload.
pub fn abl04_sharding_advisor(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl04",
        "Shared-nothing sharding: range vs. advisor (distributed txns and KTPS)",
        vec![
            "sharding",
            "est. distributed co-accesses",
            "measured distributed txns",
            "throughput (KTPS)",
        ],
    );
    let rows = (scale.micro_rows / 8).max(2_000);
    let sockets = scale.max_sockets.min(4);
    let cores = scale.cores_per_socket.min(4);
    let n_sub = sockets * 8;
    let trace = sample_shifted_trace(rows, n_sub, 2_000);
    let domains = vec![
        (TableId(0), KeyDomain::new(0, rows)),
        (TableId(1), KeyDomain::new(0, rows)),
    ];
    let range_plan = ShardingPlan::range(&domains, n_sub, sockets, sockets);
    let advised_plan = advise_sharding(
        &domains,
        n_sub,
        sockets,
        sockets,
        &trace,
        &ShardingConfig::default(),
    );
    let cases = [("range", range_plan), ("advisor", advised_plan)];
    let estimates: Vec<f64> = cases
        .iter()
        .map(|(_, plan)| evaluate_sharding(plan, &trace).total_distributed())
        .collect();
    let jobs = cases
        .iter()
        .map(|(label, plan)| {
            let machine =
                Machine::new(Topology::multisocket(sockets, cores), CostModel::westmere());
            SweepJob::measurement(
                format!("abl04/{label}"),
                machine,
                DesignSpec::shared_nothing_with_plan(plan.clone()),
                Box::new(ShiftedAb { rows }),
                scale.measure_secs,
                ExecutorConfig {
                    seed: 42,
                    default_interval_secs: scale.measure_secs,
                    time_series_bucket_secs: scale.measure_secs,
                },
            )
        })
        .collect();
    let results = run_sweep(jobs, default_threads());
    for (((label, _), estimated), result) in cases.iter().zip(estimates).zip(results) {
        let outcome = result.outcome.expect("sharding measurement runs");
        let distributed = outcome.design_stats.distributed_txns.unwrap_or(0);
        let tps = outcome.segments[0].stats.throughput_tps;
        fig.push_row(vec![
            label.to_string(),
            fmt(estimated),
            distributed.to_string(),
            fmt(tps / 1e3),
        ]);
    }
    fig.note("expected shape: the advisor removes nearly all distributed transactions and raises throughput");
    fig.set_meta(run_meta(sockets, cores));
    fig
}

/// Run one ablation by id.
pub fn run_ablation(id: &str, scale: &Scale) -> Option<FigureResult> {
    match id {
        "abl01" => Some(abl01_uniform_interconnect(scale)),
        "abl02" => Some(abl02_oversubscription(scale)),
        "abl03" => Some(abl03_sub_partition_granularity(scale)),
        "abl04" => Some(abl04_sharding_advisor(scale)),
        _ => None,
    }
}

/// Run every ablation.
pub fn run_all_ablations(scale: &Scale) -> Vec<FigureResult> {
    ABLATION_IDS
        .iter()
        .filter_map(|id| run_ablation(id, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            micro_rows: 8_000,
            memory_rows: 8_000,
            tatp_subscribers: 4_000,
            tpcc_warehouses: 2,
            ycsb_records: 4_000,
            measure_secs: 0.002,
            phase_secs: 0.004,
            interval_min_secs: 0.002,
            interval_max_secs: 0.008,
            max_sockets: 2,
            cores_per_socket: 2,
        }
    }

    #[test]
    fn shifted_trace_has_cross_sub_partition_pairs() {
        let stats = sample_shifted_trace(4_000, 16, 500);
        assert!(stats.num_sync_pairs() > 0);
        assert_eq!(stats.transactions, 500);
    }

    #[test]
    fn advisor_ablation_reports_both_plans() {
        let fig = abl04_sharding_advisor(&tiny_scale());
        assert_eq!(fig.rows.len(), 2);
        // The advisor row should not estimate more distributed co-accesses
        // than the range row.
        let range: f64 = fig.rows[0][1].parse().unwrap();
        let advised: f64 = fig.rows[1][1].parse().unwrap();
        assert!(advised <= range);
    }

    #[test]
    fn uniform_interconnect_ablation_runs() {
        let fig = abl01_uniform_interconnect(&tiny_scale());
        assert_eq!(fig.rows.len(), 2);
    }
}
