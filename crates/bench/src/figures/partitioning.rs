//! The partitioning/placement strategy comparison (Figure 6) and the
//! NewOrder flow graph (Figure 7).

use crate::harness::{machine, run_meta, Scale};
use crate::report::{fmt, FigureResult};
use atrapos_core::{KeyDomain, PartitionSpec, PartitioningScheme, TablePartitioning};
use atrapos_engine::{
    ActionOp, AtraposConfig, AtraposDesign, DesignSpec, ExecutorConfig, SystemDesign,
    VirtualExecutor, Workload,
};
use atrapos_numa::{CoreId, Topology};
use atrapos_storage::TableId;
use atrapos_workloads::{SimpleAb, Tpcc, TpccConfig, TpccTxn};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Build a scheme with one partition per core *in total* (half per table):
/// table A's partition `i` goes to an even core, table B's partition `i`
/// goes either to the adjacent odd core (same socket — the ATraPos
/// placement) or to a core one socket away (hardware-oblivious placement).
/// Shared with the oversubscription ablation (`abl02`), which compares this
/// layout against the naive one-partition-per-table-per-core scheme.
pub(crate) fn half_scheme(
    topo: &Topology,
    domains: &[(TableId, KeyDomain)],
    colocate: bool,
    sub_per_partition: usize,
) -> PartitioningScheme {
    let cores = topo.active_cores();
    let n = cores.len();
    let parts_per_table = (n / 2).max(1);
    let cores_per_socket = topo.cores_of(topo.active_sockets()[0]).len();
    let tables = domains
        .iter()
        .enumerate()
        .map(|(t_idx, &(table, domain))| {
            let partitions = (0..parts_per_table)
                .map(|i| {
                    let core = if t_idx == 0 {
                        cores[(2 * i) % n]
                    } else if colocate {
                        cores[(2 * i + 1) % n]
                    } else {
                        cores[(2 * i + 1 + cores_per_socket) % n]
                    };
                    PartitionSpec {
                        sub_start: i * sub_per_partition,
                        sub_end: (i + 1) * sub_per_partition,
                        core,
                    }
                })
                .collect();
            TablePartitioning {
                table,
                domain,
                num_sub_partitions: parts_per_table * sub_per_partition,
                partitions,
            }
        })
        .collect();
    PartitioningScheme::new(tables)
}

fn run_simple_ab(
    scale: &Scale,
    design: Box<dyn SystemDesign>,
    machine: atrapos_numa::Machine,
    workload: SimpleAb,
) -> f64 {
    let mut ex = VirtualExecutor::new(
        machine,
        design,
        Box::new(workload),
        ExecutorConfig {
            seed: 42,
            default_interval_secs: scale.measure_secs,
            time_series_bucket_secs: scale.measure_secs,
        },
    );
    ex.run_for(scale.measure_secs).throughput_tps
}

/// Figure 6: throughput of the simple two-table transaction under the five
/// partitioning and placement strategies.
pub fn fig06_placement(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig06",
        "Simple two-table transaction: partitioning & placement strategies (KTPS)",
        vec!["strategy", "throughput (KTPS)"],
    );
    let sockets = scale.max_sockets;
    let cores = scale.cores_per_socket;
    let rows = scale.micro_rows / 4;
    let workload = SimpleAb::new(rows);
    let domains = workload.table_domains();

    // 1 & 2: the baselines.
    for spec in [DesignSpec::Centralized, DesignSpec::Plp] {
        let m = machine(sockets, cores);
        let design = spec.build(&m, &workload);
        let tput = run_simple_ab(scale, design, m, workload.clone());
        fig.push_row(vec![spec.label().to_string(), fmt(tput / 1e3)]);
    }

    // 3: the naive hardware-aware scheme (one partition of each table per
    // core → two partitions per core: oversaturated).
    {
        let m = machine(sockets, cores);
        let config = AtraposConfig {
            adaptive: false,
            monitoring: false,
            ..AtraposConfig::default()
        };
        let design = Box::new(AtraposDesign::with_name("hw-aware", &m, &workload, config));
        let tput = run_simple_ab(scale, design, m, workload.clone());
        fig.push_row(vec!["HW-aware (naive)".to_string(), fmt(tput / 1e3)]);
    }

    // 4: one partition per core, placed obliviously to the topology.
    {
        let m = machine(sockets, cores);
        let scheme = half_scheme(&m.topology, &domains, false, 10);
        let config = AtraposConfig {
            adaptive: false,
            monitoring: false,
            initial_scheme: Some(scheme),
            ..AtraposConfig::default()
        };
        let design = Box::new(AtraposDesign::with_name(
            "workload-aware",
            &m,
            &workload,
            config,
        ));
        let tput = run_simple_ab(scale, design, m, workload.clone());
        fig.push_row(vec!["Workload-aware".to_string(), fmt(tput / 1e3)]);
    }

    // 5: the full ATraPos placement (correlated partitions co-located).
    {
        let m = machine(sockets, cores);
        let scheme = half_scheme(&m.topology, &domains, true, 10);
        let config = AtraposConfig {
            adaptive: false,
            monitoring: false,
            initial_scheme: Some(scheme),
            ..AtraposConfig::default()
        };
        let design = Box::new(AtraposDesign::with_name("atrapos", &m, &workload, config));
        let tput = run_simple_ab(scale, design, m, workload);
        fig.push_row(vec!["ATraPos".to_string(), fmt(tput / 1e3)]);
    }

    fig.note("expected shape: HW-aware ≈ 1.7-2x over the baselines; removing oversaturation ≈ 2.3x more; co-locating dependent partitions adds ≈ 10%");
    fig.set_meta(run_meta(sockets, cores));
    fig
}

/// Figure 7: the transaction flow graph of the TPC-C NewOrder transaction.
pub fn fig07_neworder_flowgraph() -> FigureResult {
    let mut fig = FigureResult::new(
        "fig07",
        "Transaction flow graph of the TPC-C NewOrder transaction",
        vec!["phase", "actions", "synchronization point"],
    );
    let mut tpcc = Tpcc::new(TpccConfig::scaled(2));
    tpcc.set_single(TpccTxn::NewOrder);
    let mut rng = SmallRng::seed_from_u64(7);
    let spec = tpcc.next_transaction(&mut rng, CoreId(0));
    let table_name = |id: TableId| match id.0 {
        0 => "WH",
        1 => "DIST",
        2 => "CUST",
        3 => "HIST",
        4 => "NORD",
        5 => "ORD",
        6 => "OL",
        7 => "ITEM",
        8 => "STO",
        _ => "?",
    };
    for (i, phase) in spec.phases.iter().enumerate() {
        let mut ops: Vec<String> = Vec::new();
        for a in &phase.actions {
            let tag = match &a.op {
                ActionOp::Read { table, .. } | ActionOp::ReadRange { table, .. } => {
                    format!("R({})", table_name(*table))
                }
                ActionOp::Update { table, .. } | ActionOp::Increment { table, .. } => {
                    format!("U({})", table_name(*table))
                }
                ActionOp::Insert { table, .. } => format!("I({})", table_name(*table)),
                ActionOp::Delete { table, .. } => format!("D({})", table_name(*table)),
            };
            ops.push(tag);
        }
        // Compress repeated per-item actions like the paper's "x(5-15)".
        ops.dedup();
        fig.push_row(vec![
            format!("{}", i + 1),
            ops.join(" "),
            if i + 1 < spec.phases.len() {
                format!("sync point {} ({} B)", i + 1, phase.sync_bytes)
            } else {
                "commit".to_string()
            },
        ]);
    }
    fig.note("matches the paper's Figure 7: fixed part (WH/DIST/CUST/ITEM reads), district update, order inserts + stock reads, stock updates + order-line inserts");
    fig
}
