//! The adaptivity experiments: repartitioning cost (Figure 9) and the four
//! time-series experiments (Figures 10–13).
//!
//! The time-series experiments compress the paper's time axis: the paper
//! runs 30-second workload phases with a 1–8 s monitoring interval, the
//! quick scale runs proportionally shorter virtual phases with a
//! proportionally shorter interval, so the *number* of monitoring intervals
//! per phase — and therefore the adaptation behaviour — matches the paper.

use crate::harness::{machine, Scale};
use crate::report::{fmt, FigureResult};
use atrapos_core::{AdaptiveInterval, ControllerConfig};
use atrapos_engine::{
    AtraposConfig, AtraposDesign, ExecutorConfig, SystemDesign, TimePoint, VirtualExecutor,
};
use atrapos_numa::SocketId;
use atrapos_storage::{Key, Record, Schema, Table, TableId, Value};
use atrapos_workloads::{KeyDistribution, Tatp, TatpConfig, TatpTxn};
use std::time::Instant;

/// Figure 9: wall-clock cost of repartitioning batches (merge, split,
/// rearrange) as a function of the number of repartitioning actions, on a
/// table of `scale.micro_rows` rows split into 80 partitions.
pub fn fig09_repartitioning(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig09",
        "Repartitioning cost (ms) vs. number of repartitioning actions",
        vec!["actions", "merge", "split", "rearrange"],
    );
    let rows = scale.micro_rows;
    let partitions = 80i64;
    let build = || {
        let schema = Schema::new(
            "repart",
            (0..10)
                .map(|i| atrapos_storage::Column::new(format!("c{i}"), atrapos_storage::ColumnType::Int))
                .collect(),
            vec![0],
        );
        let boundaries: Vec<Key> = (1..partitions).map(|i| Key::int(i * rows / partitions)).collect();
        let nodes = vec![SocketId(0); partitions as usize];
        let mut t = Table::range_partitioned(TableId(0), schema, boundaries, nodes);
        for i in 0..rows {
            t.load(Record::new((0..10).map(|c| Value::Int(i + c)).collect()))
                .expect("unique keys");
        }
        t
    };
    let base = build();
    for n in [10usize, 20, 30, 40, 50, 60, 70, 80] {
        // Merge n disjoint adjacent pairs.
        let mut t = base.clone();
        let start = Instant::now();
        for k in 0..n.min((partitions as usize) / 2) {
            t.index_mut().merge_with_next(k).expect("merge succeeds");
        }
        let merge_ms = start.elapsed().as_secs_f64() * 1e3;
        // Split n partitions at their midpoints.
        let mut t = base.clone();
        let start = Instant::now();
        for k in 0..n.min(partitions as usize) {
            let idx = 2 * k;
            let lower = k as i64 * 2 * rows / partitions;
            let upper = (k as i64 * 2 + 1) * rows / partitions;
            let mid = (lower + upper) / 2;
            t.index_mut()
                .split_partition(idx, Key::int(mid), SocketId(0))
                .expect("split succeeds");
        }
        let split_ms = start.elapsed().as_secs_f64() * 1e3;
        // Rearrangements: split + merge per action.
        let mut t = base.clone();
        let start = Instant::now();
        for k in 0..n.min(partitions as usize) {
            let lower = k as i64 * rows / partitions;
            let upper = (k as i64 + 1) * rows / partitions;
            let mid = (lower + upper) / 2;
            t.index_mut()
                .split_partition(k, Key::int(mid), SocketId(0))
                .expect("split succeeds");
            t.index_mut().merge_with_next(k).expect("merge succeeds");
        }
        let rearrange_ms = start.elapsed().as_secs_f64() * 1e3;
        fig.push_row(vec![
            n.to_string(),
            fmt(merge_ms),
            fmt(split_ms),
            fmt(rearrange_ms),
        ]);
    }
    fig.note(format!(
        "table of {rows} rows, 80 partitions; paper: linear growth, < 200 ms at 80 actions on 800 K rows"
    ));
    fig
}

/// Which adaptive variant to run.
#[derive(Clone, Copy, PartialEq)]
enum Variant {
    /// Monitoring and adaptation disabled (the paper's "Static" baseline).
    Static,
    /// Full ATraPos.
    Adaptive,
}

/// Build a scaled-down executor for the time-series experiments.
fn adaptive_executor(scale: &Scale, variant: Variant, initial: TatpTxn) -> VirtualExecutor {
    // A smaller machine keeps the per-second transaction counts tractable
    // while preserving the multi-socket structure.
    let m = machine(4, 4);
    let mut workload = Tatp::new(TatpConfig::scaled(scale.tatp_subscribers / 2));
    workload.set_single(initial);
    let config = match variant {
        Variant::Static => AtraposConfig {
            monitoring: false,
            adaptive: false,
            ..AtraposConfig::default()
        },
        Variant::Adaptive => AtraposConfig {
            monitoring: true,
            adaptive: true,
            controller: ControllerConfig {
                interval: AdaptiveInterval::new(
                    scale.interval_min_secs,
                    scale.interval_max_secs,
                    0.10,
                ),
                ..ControllerConfig::default()
            },
            ..AtraposConfig::default()
        },
    };
    let name = match variant {
        Variant::Static => "static",
        Variant::Adaptive => "atrapos",
    };
    let design: Box<dyn SystemDesign> =
        Box::new(AtraposDesign::with_name(name, &m, &workload, config));
    VirtualExecutor::new(
        m,
        design,
        Box::new(workload),
        ExecutorConfig {
            seed: 42,
            default_interval_secs: scale.interval_min_secs,
            time_series_bucket_secs: scale.interval_min_secs,
        },
    )
}

/// Apply a reconfiguration to the TATP workload inside an executor.
fn with_tatp(ex: &mut VirtualExecutor, f: impl FnOnce(&mut Tatp)) {
    let any = ex
        .workload_mut()
        .as_any_mut()
        .expect("TATP supports reconfiguration");
    let tatp = any.downcast_mut::<Tatp>().expect("workload is TATP");
    f(tatp);
}

/// Merge per-variant time series into rows of (time, static, atrapos).
fn series_rows(static_ts: &[TimePoint], adaptive_ts: &[TimePoint]) -> Vec<Vec<String>> {
    static_ts
        .iter()
        .zip(adaptive_ts.iter())
        .map(|(s, a)| {
            vec![
                format!("{:.2}", s.secs),
                fmt(s.tps / 1e3),
                fmt(a.tps / 1e3),
            ]
        })
        .collect()
}

fn run_phases(
    scale: &Scale,
    variant: Variant,
    initial: TatpTxn,
    phases: &[(&str, fn(&mut Tatp))],
    fail_socket_after_phase: Option<usize>,
) -> Vec<TimePoint> {
    let mut ex = adaptive_executor(scale, variant, initial);
    let mut series = Vec::new();
    for (i, (_, mutate)) in phases.iter().enumerate() {
        if i > 0 {
            with_tatp(&mut ex, |t| mutate(t));
        }
        if fail_socket_after_phase == Some(i) {
            ex.fail_socket(SocketId(3));
        }
        let stats = ex.run_for(scale.phase_secs);
        // Time points carry absolute virtual time, so phases concatenate
        // naturally.
        series.extend(stats.time_series);
    }
    series
}

/// Figure 10: adapting to workload changes (UpdSubData → GetNewDest →
/// TATP-Mix).
pub fn fig10_adapt_workload(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig10",
        "Adapting to workload changes (KTPS over time)",
        vec!["time (s)", "Static", "ATraPos"],
    );
    let phases: &[(&str, fn(&mut Tatp))] = &[
        ("UpdSubData", |_| {}),
        ("GetNewDest", |t| t.set_single(TatpTxn::GetNewDestination)),
        ("TATP-Mix", |t| t.set_standard_mix()),
    ];
    let s = run_phases(scale, Variant::Static, TatpTxn::UpdateSubscriberData, phases, None);
    let a = run_phases(scale, Variant::Adaptive, TatpTxn::UpdateSubscriberData, phases, None);
    for row in series_rows(&s, &a) {
        fig.push_row(row);
    }
    fig.note(format!(
        "workload switches every {:.2} virtual s (paper: 30 s phases, time axis compressed {:.0}x)",
        scale.phase_secs,
        scale.time_compression()
    ));
    fig.note("expected shape: ATraPos recovers within a few monitoring intervals after each switch and exceeds the static configuration");
    fig
}

/// Figure 11: adapting to sudden skew (50% of requests to 20% of the data).
pub fn fig11_adapt_skew(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig11",
        "Adapting to sudden workload skew (KTPS over time)",
        vec!["time (s)", "Static", "ATraPos"],
    );
    let phases: &[(&str, fn(&mut Tatp))] = &[
        ("uniform", |_| {}),
        ("skewed", |t| {
            t.set_distribution(KeyDistribution::Hotspot {
                data_fraction: 0.2,
                access_fraction: 0.5,
            })
        }),
        ("skewed", |_| {}),
    ];
    let s = run_phases(scale, Variant::Static, TatpTxn::GetSubscriberData, phases, None);
    let a = run_phases(scale, Variant::Adaptive, TatpTxn::GetSubscriberData, phases, None);
    for row in series_rows(&s, &a) {
        fig.push_row(row);
    }
    fig.note("expected shape: both drop when the skew appears; ATraPos repartitions and recovers most of the loss, the static system does not");
    fig
}

/// Figure 12: adapting to a hardware change (one socket fails).
pub fn fig12_adapt_hardware(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig12",
        "Adapting to a processor failure (KTPS over time)",
        vec!["time (s)", "Static", "ATraPos"],
    );
    let phases: &[(&str, fn(&mut Tatp))] = &[("before", |_| {}), ("failed", |_| {}), ("failed", |_| {})];
    let s = run_phases(
        scale,
        Variant::Static,
        TatpTxn::GetSubscriberData,
        phases,
        Some(1),
    );
    let a = run_phases(
        scale,
        Variant::Adaptive,
        TatpTxn::GetSubscriberData,
        phases,
        Some(1),
    );
    for row in series_rows(&s, &a) {
        fig.push_row(row);
    }
    fig.note("one of four sockets fails after the first phase; the static system overloads one remaining socket, ATraPos repartitions across the surviving cores");
    fig
}

/// Figure 13: adapting to frequent workload changes (A = GetNewDest,
/// B = TATP-Mix, alternating).
pub fn fig13_adapt_frequency(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig13",
        "Adapting to frequent workload changes (KTPS over time, ATraPos)",
        vec!["time (s)", "ATraPos", "phase"],
    );
    let mut ex = adaptive_executor(scale, Variant::Adaptive, TatpTxn::GetNewDestination);
    let phases = ["A", "B", "A", "B", "A", "B"];
    for (i, label) in phases.iter().enumerate() {
        if i > 0 {
            with_tatp(&mut ex, |t| {
                if *label == "A" {
                    t.set_single(TatpTxn::GetNewDestination);
                } else {
                    t.set_standard_mix();
                }
            });
        }
        let stats = ex.run_for(scale.phase_secs);
        for p in stats.time_series {
            fig.push_row(vec![
                format!("{:.2}", p.secs),
                fmt(p.tps / 1e3),
                label.to_string(),
            ]);
        }
    }
    fig.note("A = GetNewDest, B = TATP-Mix; the monitoring interval relaxes while the workload is stable and resets after each adaptation");
    fig
}
