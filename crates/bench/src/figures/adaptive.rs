//! The adaptivity experiments: repartitioning cost (Figure 9) and the four
//! time-series experiments (Figures 10–13).
//!
//! The time-series experiments compress the paper's time axis: the paper
//! runs 30-second workload phases with a 1–8 s monitoring interval, the
//! quick scale runs proportionally shorter virtual phases with a
//! proportionally shorter interval, so the *number* of monitoring intervals
//! per phase — and therefore the adaptation behaviour — matches the paper.
//!
//! Each experiment is a declarative [`Scenario`] run against two
//! [`DesignSpec`]s (the static baseline and full ATraPos) — the timeline is
//! data, so the same scenario could be loaded from a file (see the
//! `scenario_replay` example) or swept over other designs.

use crate::harness::{machine, run_meta, Scale};
use crate::report::{fmt, write_scenario_json, FigureResult};
use atrapos_core::{AdaptiveInterval, ControllerConfig, KeyDistribution};
use atrapos_engine::scenario::{Scenario, ScenarioEvent, ScenarioOutcome};
use atrapos_engine::sweep::{default_threads, run_sweep, SweepJob};
use atrapos_engine::{
    AtraposConfig, DesignSpec, ExecutorConfig, RunMeta, TimePoint, VirtualExecutor,
};
use atrapos_numa::{Machine, SocketId};
use atrapos_storage::{Key, Record, Schema, Table, TableId, Value};
use atrapos_workloads::{Tatp, TatpConfig, TatpTxn};
use std::time::Instant;

/// Figure 9: wall-clock cost of repartitioning batches (merge, split,
/// rearrange) as a function of the number of repartitioning actions, on a
/// table of `scale.micro_rows` rows split into 80 partitions.
pub fn fig09_repartitioning(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig09",
        "Repartitioning cost (ms) vs. number of repartitioning actions",
        vec!["actions", "merge", "split", "rearrange"],
    );
    let rows = scale.micro_rows;
    let partitions = 80i64;
    let build = || {
        let schema = Schema::new(
            "repart",
            (0..10)
                .map(|i| {
                    atrapos_storage::Column::new(format!("c{i}"), atrapos_storage::ColumnType::Int)
                })
                .collect(),
            vec![0],
        );
        let boundaries: Vec<Key> = (1..partitions)
            .map(|i| Key::int(i * rows / partitions))
            .collect();
        let nodes = vec![SocketId(0); partitions as usize];
        let mut t = Table::range_partitioned(TableId(0), schema, boundaries, nodes);
        for i in 0..rows {
            t.load(Record::new((0..10).map(|c| Value::Int(i + c)).collect()))
                .expect("unique keys");
        }
        t
    };
    let base = build();
    for n in [10usize, 20, 30, 40, 50, 60, 70, 80] {
        // Merge n disjoint adjacent pairs.
        let mut t = base.clone();
        let start = Instant::now();
        for k in 0..n.min((partitions as usize) / 2) {
            t.index_mut().merge_with_next(k).expect("merge succeeds");
        }
        let merge_ms = start.elapsed().as_secs_f64() * 1e3;
        // Split n partitions at their midpoints.
        let mut t = base.clone();
        let start = Instant::now();
        for k in 0..n.min(partitions as usize) {
            let idx = 2 * k;
            let lower = k as i64 * 2 * rows / partitions;
            let upper = (k as i64 * 2 + 1) * rows / partitions;
            let mid = (lower + upper) / 2;
            t.index_mut()
                .split_partition(idx, Key::int(mid), SocketId(0))
                .expect("split succeeds");
        }
        let split_ms = start.elapsed().as_secs_f64() * 1e3;
        // Rearrangements: split + merge per action.
        let mut t = base.clone();
        let start = Instant::now();
        for k in 0..n.min(partitions as usize) {
            let lower = k as i64 * rows / partitions;
            let upper = (k as i64 + 1) * rows / partitions;
            let mid = (lower + upper) / 2;
            t.index_mut()
                .split_partition(k, Key::int(mid), SocketId(0))
                .expect("split succeeds");
            t.index_mut().merge_with_next(k).expect("merge succeeds");
        }
        let rearrange_ms = start.elapsed().as_secs_f64() * 1e3;
        fig.push_row(vec![
            n.to_string(),
            fmt(merge_ms),
            fmt(split_ms),
            fmt(rearrange_ms),
        ]);
    }
    fig.note(format!(
        "table of {rows} rows, 80 partitions; paper: linear growth, < 200 ms at 80 actions on 800 K rows"
    ));
    fig
}

/// The provenance record of the adaptive figure runs (the 4×4 machine of
/// [`figure_parts`]).
fn figure_meta() -> RunMeta {
    run_meta(4, 4)
}

/// Which adaptive variant to run.
#[derive(Clone, Copy, PartialEq)]
enum Variant {
    /// Monitoring and adaptation disabled (the paper's "Static" baseline).
    Static,
    /// Full ATraPos.
    Adaptive,
}

/// The design specification of one variant.
fn variant_spec(scale: &Scale, variant: Variant) -> DesignSpec {
    match variant {
        Variant::Static => DesignSpec::atrapos_named(
            "static",
            AtraposConfig {
                monitoring: false,
                adaptive: false,
                ..AtraposConfig::default()
            },
        ),
        Variant::Adaptive => DesignSpec::atrapos_named(
            "atrapos",
            AtraposConfig {
                monitoring: true,
                adaptive: true,
                controller: ControllerConfig {
                    interval: AdaptiveInterval::new(
                        scale.interval_min_secs,
                        scale.interval_max_secs,
                        0.10,
                    ),
                    ..ControllerConfig::default()
                },
                ..AtraposConfig::default()
            },
        ),
    }
}

/// The machine, workload, design, and executor parameters of one adaptive
/// figure variant: a 4×4 machine with TATP pinned to an initial transaction
/// type.  Everything else (executor, sweep job) derives from this.
fn figure_parts(
    scale: &Scale,
    variant: Variant,
    initial: TatpTxn,
) -> (Machine, Box<Tatp>, DesignSpec, ExecutorConfig) {
    // A smaller machine keeps the per-second transaction counts tractable
    // while preserving the multi-socket structure.
    let m = machine(4, 4);
    let mut workload = Tatp::new(TatpConfig::scaled(scale.tatp_subscribers / 2));
    workload.set_single(initial);
    let config = ExecutorConfig {
        seed: 42,
        default_interval_secs: scale.interval_min_secs,
        time_series_bucket_secs: scale.interval_min_secs,
    };
    (m, Box::new(workload), variant_spec(scale, variant), config)
}

/// Build the executor the adaptive figure timelines (Figures 10–13) run
/// on: a 4×4 machine with TATP pinned to an initial transaction type.
/// Public so the wallclock harness and the golden-figure regression tests
/// reuse the exact figure configuration.
pub fn figure_executor(scale: &Scale, adaptive: bool, initial: TatpTxn) -> VirtualExecutor {
    let variant = if adaptive {
        Variant::Adaptive
    } else {
        Variant::Static
    };
    let (m, workload, spec, config) = figure_parts(scale, variant, initial);
    let design = spec.build(&m, workload.as_ref());
    VirtualExecutor::new(m, design, workload, config)
}

/// Package one adaptive figure variant as a lab job (the exact simulation
/// [`figure_executor`] + `run_scenario` would perform).  Public so the
/// wallclock harness sweeps the figure bundle on the same jobs the figure
/// runners use.
pub fn figure_job(
    name: impl Into<String>,
    scale: &Scale,
    adaptive: bool,
    initial: TatpTxn,
    scenario: &Scenario,
) -> SweepJob {
    let variant = if adaptive {
        Variant::Adaptive
    } else {
        Variant::Static
    };
    let (machine, workload, design, config) = figure_parts(scale, variant, initial);
    SweepJob {
        name: name.into(),
        machine,
        design,
        workload,
        scenario: scenario.clone(),
        config,
    }
}

/// Run a scenario under both variants — in parallel, one lab job each —
/// and return (static, adaptive).
fn run_both(
    scale: &Scale,
    initial: TatpTxn,
    scenario: &Scenario,
) -> (ScenarioOutcome, ScenarioOutcome) {
    let jobs = vec![
        figure_job("static", scale, false, initial, scenario),
        figure_job("atrapos", scale, true, initial, scenario),
    ];
    let mut results = run_sweep(jobs, default_threads());
    let a = results
        .remove(1)
        .outcome
        .expect("scenario runs on the adaptive variant");
    let s = results
        .remove(0)
        .outcome
        .expect("scenario runs on the static variant");
    (s, a)
}

/// Merge per-variant time series into rows of (time, static, atrapos).
fn series_rows(static_ts: &[TimePoint], adaptive_ts: &[TimePoint]) -> Vec<Vec<String>> {
    static_ts
        .iter()
        .zip(adaptive_ts.iter())
        .map(|(s, a)| vec![format!("{:.2}", s.secs), fmt(s.tps / 1e3), fmt(a.tps / 1e3)])
        .collect()
}

/// The Figure 10 timeline: UpdSubData → GetNewDest → TATP-Mix.
pub fn fig10_scenario(scale: &Scale) -> Scenario {
    let p = scale.phase_secs;
    Scenario::new("fig10-adapt-to-workload-change", 3.0 * p)
        .starting_as("UpdSubData")
        .at(
            p,
            "GetNewDest",
            ScenarioEvent::SetWorkloadPhase {
                txn: "GetNewDest".to_string(),
            },
        )
        .at(2.0 * p, "TATP-Mix", ScenarioEvent::SetMix)
}

/// Figure 10: adapting to workload changes (UpdSubData → GetNewDest →
/// TATP-Mix).
pub fn fig10_adapt_workload(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig10",
        "Adapting to workload changes (KTPS over time)",
        vec!["time (s)", "Static", "ATraPos"],
    );
    let scenario = fig10_scenario(scale);
    let (s, a) = run_both(scale, TatpTxn::UpdateSubscriberData, &scenario);
    for row in series_rows(&s.time_series(), &a.time_series()) {
        fig.push_row(row);
    }
    fig.note(format!(
        "workload switches every {:.2} virtual s (paper: 30 s phases, time axis compressed {:.0}x)",
        scale.phase_secs,
        scale.time_compression()
    ));
    fig.note("expected shape: ATraPos recovers within a few monitoring intervals after each switch and exceeds the static configuration");
    write_scenario_json("fig10", figure_meta(), &[&s, &a]);
    fig.set_meta(figure_meta());
    fig
}

/// The Figure 11 timeline: uniform, then a sudden hotspot (50% of the
/// requests on 20% of the data) held for two phases.
pub fn fig11_scenario(scale: &Scale) -> Scenario {
    let p = scale.phase_secs;
    Scenario::new("fig11-adapt-to-skew", 3.0 * p)
        .starting_as("uniform")
        .at(
            p,
            "skewed",
            ScenarioEvent::SetSkew {
                distribution: KeyDistribution::Hotspot {
                    data_fraction: 0.2,
                    access_fraction: 0.5,
                },
            },
        )
        .at(2.0 * p, "skewed", ScenarioEvent::Measure)
}

/// Figure 11: adapting to sudden skew (50% of requests to 20% of the data).
pub fn fig11_adapt_skew(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig11",
        "Adapting to sudden workload skew (KTPS over time)",
        vec!["time (s)", "Static", "ATraPos"],
    );
    let scenario = fig11_scenario(scale);
    let (s, a) = run_both(scale, TatpTxn::GetSubscriberData, &scenario);
    for row in series_rows(&s.time_series(), &a.time_series()) {
        fig.push_row(row);
    }
    fig.note("expected shape: both drop when the skew appears; ATraPos repartitions and recovers most of the loss, the static system does not");
    write_scenario_json("fig11", figure_meta(), &[&s, &a]);
    fig.set_meta(figure_meta());
    fig
}

/// The Figure 12 timeline: one of four sockets fails after the first
/// phase.
pub fn fig12_scenario(scale: &Scale) -> Scenario {
    let p = scale.phase_secs;
    Scenario::new("fig12-adapt-to-processor-failure", 3.0 * p)
        .starting_as("before")
        .at(p, "failed", ScenarioEvent::FailSocket { socket: 3 })
        .at(2.0 * p, "failed", ScenarioEvent::Measure)
}

/// Figure 12: adapting to a hardware change (one socket fails).
pub fn fig12_adapt_hardware(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig12",
        "Adapting to a processor failure (KTPS over time)",
        vec!["time (s)", "Static", "ATraPos"],
    );
    let scenario = fig12_scenario(scale);
    let (s, a) = run_both(scale, TatpTxn::GetSubscriberData, &scenario);
    for row in series_rows(&s.time_series(), &a.time_series()) {
        fig.push_row(row);
    }
    fig.note("one of four sockets fails after the first phase; the static system overloads one remaining socket, ATraPos repartitions across the surviving cores");
    write_scenario_json("fig12", figure_meta(), &[&s, &a]);
    fig.set_meta(figure_meta());
    fig
}

/// The Figure 13 timeline: A = GetNewDest and B = TATP-Mix alternating
/// every phase.
pub fn fig13_scenario(scale: &Scale) -> Scenario {
    let p = scale.phase_secs;
    let mut scenario = Scenario::new("fig13-adapt-to-frequent-changes", 6.0 * p).starting_as("A");
    for i in 1..6 {
        let (label, event) = if i % 2 == 1 {
            ("B", ScenarioEvent::SetMix)
        } else {
            (
                "A",
                ScenarioEvent::SetWorkloadPhase {
                    txn: "GetNewDest".to_string(),
                },
            )
        };
        scenario = scenario.at(i as f64 * p, label, event);
    }
    scenario
}

/// Figure 13: adapting to frequent workload changes (A = GetNewDest,
/// B = TATP-Mix, alternating).
pub fn fig13_adapt_frequency(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig13",
        "Adapting to frequent workload changes (KTPS over time, ATraPos)",
        vec!["time (s)", "ATraPos", "phase"],
    );
    let scenario = fig13_scenario(scale);
    let outcome = run_sweep(
        vec![figure_job(
            "atrapos",
            scale,
            true,
            TatpTxn::GetNewDestination,
            &scenario,
        )],
        default_threads(),
    )
    .remove(0)
    .outcome
    .expect("scenario runs");
    for segment in &outcome.segments {
        for p in &segment.stats.time_series {
            fig.push_row(vec![
                format!("{:.2}", p.secs),
                fmt(p.tps / 1e3),
                segment.label.clone(),
            ]);
        }
    }
    fig.note("A = GetNewDest, B = TATP-Mix; the monitoring interval relaxes while the workload is stable and resets after each adaptation");
    write_scenario_json("fig13", figure_meta(), &[&outcome]);
    fig.set_meta(figure_meta());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            micro_rows: 8_000,
            memory_rows: 8_000,
            tatp_subscribers: 4_000,
            tpcc_warehouses: 2,
            ycsb_records: 4_000,
            measure_secs: 0.002,
            phase_secs: 0.004,
            interval_min_secs: 0.002,
            interval_max_secs: 0.008,
            max_sockets: 2,
            cores_per_socket: 2,
        }
    }

    #[test]
    fn figure_scenarios_are_valid_and_serializable() {
        let scale = tiny_scale();
        for scenario in [
            fig10_scenario(&scale),
            fig11_scenario(&scale),
            fig12_scenario(&scale),
            fig13_scenario(&scale),
        ] {
            scenario.validate().expect("figure timelines are valid");
            let json = scenario.to_json();
            assert_eq!(Scenario::from_json(&json).unwrap(), scenario);
        }
    }

    #[test]
    fn fig10_runs_three_labelled_segments() {
        let scale = tiny_scale();
        let scenario = fig10_scenario(&scale);
        let outcome = figure_executor(&scale, true, TatpTxn::UpdateSubscriberData)
            .run_scenario(&scenario)
            .unwrap();
        let labels: Vec<&str> = outcome.segments.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["UpdSubData", "GetNewDest", "TATP-Mix"]);
        assert!(outcome.total_committed() > 0);
    }
}
