//! The YCSB experiments — an extension beyond the paper's evaluation.
//!
//! Two experiments over the update-heavy core mix (YCSB-A) on the
//! adaptive figures' 4×4 machine:
//!
//! * **ycsb01** — a Zipfian skew sweep: θ ∈ {0, 0.6, 0.99} across all
//!   four system designs.  The partition-affinity story of the paper in
//!   YCSB terms: skew concentrates load on few partitions, and how much
//!   throughput survives depends on how the design shares work.
//! * **ycsb02** — a *drifting* hotspot timeline across the same four
//!   designs: after a uniform warm-up phase, a compact hot window starts
//!   rotating around the keyspace, so no static layout stays right.  The
//!   ATraPos variant runs with monitoring and adaptation on (the same
//!   scaled controller as Figures 10–13) and repartitions as the hotspot
//!   moves.
//!
//! Like every other experiment, both are declarative: scenarios are
//! serializable timelines, designs are [`DesignSpec`]s, and the runs fan
//! out on the parallel experiment lab.

use crate::harness::{machine, run_meta, Scale};
use crate::report::{fmt, write_scenario_json, FigureResult};
use atrapos_core::{AdaptiveInterval, ControllerConfig, KeyDistribution};
use atrapos_engine::scenario::{Scenario, ScenarioEvent, ScenarioOutcome};
use atrapos_engine::sweep::{default_threads, run_sweep, SweepJob};
use atrapos_engine::{AtraposConfig, DesignSpec, ExecutorConfig, RunMeta, TimePoint};
use atrapos_workloads::{Ycsb, YcsbConfig};

/// The experiment identifiers this module provides.
pub const YCSB_IDS: &[&str] = &["ycsb01", "ycsb02"];

/// The provenance record of the YCSB runs (the 4×4 machine).
pub(crate) fn ycsb_meta() -> RunMeta {
    run_meta(4, 4)
}

/// The four designs both experiments compare, with their table labels.
/// The ATraPos entry runs the full adaptive configuration with the
/// monitoring interval scaled like the Figure 10–13 variant.
pub fn ycsb_designs(scale: &Scale) -> Vec<(&'static str, DesignSpec)> {
    vec![
        ("Centralized", DesignSpec::Centralized),
        ("Shared-nothing", DesignSpec::coarse_shared_nothing()),
        ("PLP", DesignSpec::Plp),
        (
            "ATraPos",
            DesignSpec::atrapos_with(AtraposConfig {
                monitoring: true,
                adaptive: true,
                controller: ControllerConfig {
                    interval: AdaptiveInterval::new(
                        scale.interval_min_secs,
                        scale.interval_max_secs,
                        0.10,
                    ),
                    ..ControllerConfig::default()
                },
                ..AtraposConfig::default()
            }),
        ),
    ]
}

/// The executor configuration of every YCSB job: fixed seed, the
/// monitoring interval and time-series bucket of the adaptive figures.
fn ycsb_config(scale: &Scale) -> ExecutorConfig {
    ExecutorConfig {
        seed: 42,
        default_interval_secs: scale.interval_min_secs,
        time_series_bucket_secs: scale.interval_min_secs,
    }
}

/// Package one YCSB scenario × design as a lab job on the 4×4 machine.
pub fn ycsb_job(
    name: impl Into<String>,
    scale: &Scale,
    workload: YcsbConfig,
    design: DesignSpec,
    scenario: &Scenario,
) -> SweepJob {
    SweepJob {
        name: name.into(),
        machine: machine(4, 4),
        design,
        workload: Box::new(Ycsb::new(workload)),
        scenario: scenario.clone(),
        config: ycsb_config(scale),
    }
}

/// The eventless measurement scenario of the skew sweep.
fn measurement_scenario(name: &str, scale: &Scale) -> Scenario {
    Scenario::new(name, scale.measure_secs)
}

/// The θ values of the skew sweep.
pub const YCSB_THETAS: [f64; 3] = [0.0, 0.6, 0.99];

/// ycsb01: YCSB-A throughput under Zipfian skew θ ∈ {0, 0.6, 0.99} on all
/// four designs.
pub fn ycsb01_skew_sweep(scale: &Scale) -> FigureResult {
    let designs = ycsb_designs(scale);
    let mut header = vec!["theta"];
    header.extend(designs.iter().map(|(label, _)| *label));
    let mut fig = FigureResult::new(
        "ycsb01",
        "YCSB-A throughput under Zipfian skew (KTPS vs. theta)",
        header,
    );
    let mut jobs = Vec::new();
    for theta in YCSB_THETAS {
        for (label, spec) in &designs {
            jobs.push(ycsb_job(
                format!("ycsb-a/theta{theta}/{label}"),
                scale,
                YcsbConfig::workload_a(scale.ycsb_records).with_theta(theta),
                spec.clone(),
                &measurement_scenario("ycsb01-skew-sweep", scale),
            ));
        }
    }
    let results = run_sweep(jobs, default_threads());
    let mut rows = results.chunks(designs.len());
    for theta in YCSB_THETAS {
        let chunk = rows.next().expect("one result chunk per theta");
        let mut row = vec![format!("{theta}")];
        for r in chunk {
            let outcome = r
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("ycsb01 job '{}' failed: {e}", r.name));
            row.push(fmt(outcome.segments[0].stats.throughput_tps / 1e3));
        }
        fig.push_row(row);
    }
    fig.note(format!(
        "YCSB core mix A (50% reads / 50% updates) over {} records on the 4x4 machine; \
         theta 0 is uniform, 0.99 is the YCSB standard",
        scale.ycsb_records
    ));
    fig.note(
        "expected shape: skew erodes the partitioned designs' lead — at theta 0.99 the \
         few hot partitions saturate and fall to (or below) the skew-insensitive \
         centralized baseline — while ATraPos stays at or above PLP at every theta",
    );
    fig.set_meta(ycsb_meta());
    fig
}

/// The ycsb02 timeline: one uniform phase, then a compact hot window
/// (10% of the keys drawing 90% of the accesses) starts rotating around
/// the keyspace for the remaining two phases.
///
/// The rotation period is expressed in *transactions* (the distribution
/// layer is workload-side and sees draws, not seconds) and sized so the
/// window needs several monitoring intervals to traverse its own width —
/// the window fully leaves its original position over the run (a static
/// layout ends up wrong), yet each position lasts long enough for the
/// adaptive controller to repartition toward it and collect the payoff
/// before the heat moves on.  A much faster drift degenerates into
/// repartition thrash for *any* controller: the layout is stale the
/// moment it is installed.
pub fn ycsb02_scenario(scale: &Scale) -> Scenario {
    let p = scale.phase_secs;
    let period_txns = (p * 16_000_000.0).max(1_000.0) as u64;
    Scenario::new("ycsb02-drifting-hotspot", 3.0 * p)
        .starting_as("uniform")
        .at(
            p,
            "drifting",
            ScenarioEvent::SetSkew {
                distribution: KeyDistribution::Drift {
                    data_fraction: 0.1,
                    access_fraction: 0.9,
                    period_txns,
                },
            },
        )
        .at(2.0 * p, "drifting", ScenarioEvent::Measure)
}

/// The workload every ycsb02 variant starts from: YCSB-A with a uniform
/// request distribution (the drift arrives via the timeline).
pub fn ycsb02_workload(scale: &Scale) -> YcsbConfig {
    YcsbConfig::workload_a(scale.ycsb_records).with_distribution(KeyDistribution::Uniform)
}

/// The ycsb02 lab jobs, one per design, in table order.
pub fn ycsb02_jobs(scale: &Scale) -> Vec<SweepJob> {
    let scenario = ycsb02_scenario(scale);
    ycsb_designs(scale)
        .into_iter()
        .map(|(label, spec)| {
            ycsb_job(
                format!("ycsb02/{label}"),
                scale,
                ycsb02_workload(scale),
                spec,
                &scenario,
            )
        })
        .collect()
}

/// Merge the per-design time series into rows of (time, KTPS…).
pub(crate) fn series_rows(series: &[Vec<TimePoint>]) -> Vec<Vec<String>> {
    let len = series.iter().map(Vec::len).min().unwrap_or(0);
    (0..len)
        .map(|i| {
            let mut row = vec![format!("{:.2}", series[0][i].secs)];
            row.extend(series.iter().map(|s| fmt(s[i].tps / 1e3)));
            row
        })
        .collect()
}

/// ycsb02: the drifting-hotspot adaptivity run (KTPS over time) across
/// all four designs.
pub fn ycsb02_drifting_hotspot(scale: &Scale) -> FigureResult {
    let designs = ycsb_designs(scale);
    let mut header = vec!["time (s)"];
    header.extend(designs.iter().map(|(label, _)| *label));
    let mut fig = FigureResult::new(
        "ycsb02",
        "Adapting to a drifting hotspot (YCSB-A, KTPS over time)",
        header,
    );
    let outcomes: Vec<ScenarioOutcome> = run_sweep(ycsb02_jobs(scale), default_threads())
        .into_iter()
        .map(|r| {
            r.outcome
                .unwrap_or_else(|e| panic!("ycsb02 job '{}' failed: {e}", r.name))
        })
        .collect();
    let series: Vec<Vec<TimePoint>> = outcomes.iter().map(|o| o.time_series()).collect();
    for row in series_rows(&series) {
        fig.push_row(row);
    }
    fig.note(format!(
        "after {:.2} virtual s a hot window (10% of the keys, 90% of the accesses) starts \
         rotating around the keyspace; ATraPos runs with monitoring + adaptation on",
        scale.phase_secs
    ));
    fig.note(
        "expected shape: the drifting hotspot collapses every static layout to its \
         hot partitions' capacity; the adaptive ATraPos configuration repeatedly \
         repartitions toward the moving window (paying a visible pause at each \
         repartitioning) and settles above the static designs",
    );
    write_scenario_json("ycsb02", ycsb_meta(), &outcomes.iter().collect::<Vec<_>>());
    fig.set_meta(ycsb_meta());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        let mut s = Scale::quick();
        s.ycsb_records = 4_000;
        s.measure_secs = 0.002;
        s.phase_secs = 0.004;
        s.interval_min_secs = 0.002;
        s.interval_max_secs = 0.008;
        s
    }

    #[test]
    fn ycsb02_scenario_is_valid_and_serializable() {
        let scenario = ycsb02_scenario(&tiny_scale());
        scenario.validate().expect("ycsb02 timeline is valid");
        let json = scenario.to_json();
        assert_eq!(Scenario::from_json(&json).unwrap(), scenario);
    }

    #[test]
    fn ycsb02_runs_three_labelled_segments_on_every_design() {
        let scale = tiny_scale();
        for r in run_sweep(ycsb02_jobs(&scale), 2) {
            let outcome = r.outcome.expect("ycsb02 job runs");
            let labels: Vec<&str> = outcome.segments.iter().map(|s| s.label.as_str()).collect();
            assert_eq!(labels, vec!["uniform", "drifting", "drifting"]);
            assert!(outcome.total_committed() > 0, "{} stalled", r.name);
        }
    }

    #[test]
    fn ycsb01_produces_one_row_per_theta() {
        let fig = ycsb01_skew_sweep(&tiny_scale());
        assert_eq!(fig.rows.len(), YCSB_THETAS.len());
        assert_eq!(fig.header.len(), 5);
        // Every cell is a positive throughput.
        for c in 1..fig.header.len() {
            for v in fig.column(c) {
                assert!(v > 0.0);
            }
            assert_eq!(fig.column(c).len(), fig.rows.len());
        }
    }
}
