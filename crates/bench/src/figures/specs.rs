//! The declarative-workload experiment (`spec01`) — workloads the paper
//! never had, expressed purely as data.
//!
//! Every row is a shipped `examples/specs/*.json` file compiled by
//! [`WorkloadSpec::compile`] onto the same sampler + buffer-reuse hot
//! path as the hand-rolled modules, then run across the four YCSB-family
//! designs on the 4×4 machine:
//!
//! * **secondary-index** — Zipfian point lookups through an index table
//!   into a base table, mixed with index-maintenance updates that touch
//!   both tables across a sync point.  The foreign key lets the
//!   partitioning advisor co-locate index and base partitions.
//! * **scan-write** — hotspot range scans racing tail inserts and
//!   uniform single-row updates: the scan/write interference pattern.
//! * **multi-tenant** — four small per-tenant tables with a heavily
//!   skewed tenant mix (55/25/15/5), each tenant hammering its own 20%
//!   hot set.
//!
//! The same helpers back the `atrapos workload check|run` subcommand.

use super::ycsb::ycsb_designs;
use crate::harness::{machine, run_meta, Scale};
use crate::report::{fmt, FigureResult};
use atrapos_engine::scenario::Scenario;
use atrapos_engine::sweep::{default_threads, run_sweep, SweepJob};
use atrapos_engine::{DesignSpec, ExecutorConfig, RunMeta};
use atrapos_workloads::spec::{CompiledWorkload, WorkloadSpec};
use std::path::{Path, PathBuf};

/// The experiment identifiers this module provides.
pub const SPEC_IDS: &[&str] = &["spec01"];

/// The shipped spec-only workload files behind `spec01`, in row order.
pub const SPEC01_FILES: &[&str] = &[
    "secondary_index.json",
    "scan_write.json",
    "multi_tenant.json",
];

/// The provenance record of the spec runs (the 4×4 machine).
pub(crate) fn spec_meta() -> RunMeta {
    run_meta(4, 4)
}

/// The shipped spec directory: `examples/specs/` under the current
/// directory when run from the workspace root, else resolved relative to
/// this crate (tests and benches run from `crates/bench`).
pub fn shipped_specs_dir() -> PathBuf {
    let local = Path::new("examples/specs");
    if local.is_dir() {
        return local.to_path_buf();
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs")
}

/// Load a spec file (parse only — callers validate or compile next).
pub fn load_spec(path: &Path) -> Result<WorkloadSpec, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    WorkloadSpec::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Load one shipped `examples/specs/` file by name.
pub fn shipped_spec(file: &str) -> Result<WorkloadSpec, String> {
    load_spec(&shipped_specs_dir().join(file))
}

/// The executor configuration of every spec job — identical to the YCSB
/// family: fixed seed, the monitoring interval and time-series bucket of
/// the adaptive figures.
fn spec_config(scale: &Scale) -> ExecutorConfig {
    ExecutorConfig {
        seed: 42,
        default_interval_secs: scale.interval_min_secs,
        time_series_bucket_secs: scale.interval_min_secs,
    }
}

/// Package one compiled spec workload × design as a lab job on the 4×4
/// machine.
pub fn spec_job(
    name: impl Into<String>,
    scale: &Scale,
    workload: CompiledWorkload,
    design: DesignSpec,
    scenario: &Scenario,
) -> SweepJob {
    SweepJob {
        name: name.into(),
        machine: machine(4, 4),
        design,
        workload: Box::new(workload),
        scenario: scenario.clone(),
        config: spec_config(scale),
    }
}

/// The spec01 lab jobs: every shipped spec-only workload × every design,
/// in table order.
pub fn spec01_jobs(scale: &Scale) -> Vec<SweepJob> {
    let designs = ycsb_designs(scale);
    let scenario = Scenario::new("spec01-declarative", scale.measure_secs);
    let mut jobs = Vec::new();
    for file in SPEC01_FILES {
        let spec = shipped_spec(file).unwrap_or_else(|e| panic!("shipped spec {file}: {e}"));
        for (label, design) in &designs {
            let workload = spec
                .compile()
                .unwrap_or_else(|e| panic!("shipped spec {file} does not compile: {e}"));
            jobs.push(spec_job(
                format!("{}/{label}", spec.name),
                scale,
                workload,
                design.clone(),
                &scenario,
            ));
        }
    }
    jobs
}

/// spec01: throughput of the three spec-only workloads across the four
/// designs.
pub fn spec01_declarative_workloads(scale: &Scale) -> FigureResult {
    let designs = ycsb_designs(scale);
    let mut header = vec!["workload"];
    header.extend(designs.iter().map(|(label, _)| *label));
    let mut fig = FigureResult::new(
        "spec01",
        "Declarative spec-only workloads across the designs (KTPS)",
        header,
    );
    let results = run_sweep(spec01_jobs(scale), default_threads());
    for (file, chunk) in SPEC01_FILES.iter().zip(results.chunks(designs.len())) {
        let name = chunk[0].name.split('/').next().unwrap_or(file).to_string();
        let mut row = vec![name];
        for r in chunk {
            let outcome = r
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("spec01 job '{}' failed: {e}", r.name));
            row.push(fmt(outcome.segments[0].stats.throughput_tps / 1e3));
        }
        fig.push_row(row);
    }
    fig.note(
        "workloads defined entirely in examples/specs/*.json and compiled onto the \
         hand-rolled generators' sampler + buffer-reuse hot path; no Rust per workload",
    );
    fig.note(
        "expected shape: the partition-friendly specs (secondary-index with its \
         co-locatable foreign key, multi-tenant with disjoint per-tenant tables) reward \
         the partitioned designs, and ATraPos stays at or above PLP on every row",
    );
    fig.set_meta(spec_meta());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_specs_parse_validate_and_compile() {
        for file in SPEC01_FILES {
            let spec = shipped_spec(file).unwrap();
            spec.compile().unwrap_or_else(|e| panic!("{file}: {e}"));
        }
    }

    #[test]
    fn parity_spec_files_match_their_constructors_byte_for_byte() {
        // The shipped parity files are generated from the Rust
        // constructors (`cargo run -p atrapos-workloads --example
        // regen_parity_specs`); a drifted file would silently decouple
        // the CLI parity check from the in-crate digest tests.
        for (file, spec) in [
            ("ycsb_a.json", atrapos_workloads::spec::ycsb_a(25_000)),
            ("simple_ab.json", atrapos_workloads::spec::simple_ab(10_000)),
        ] {
            let path = shipped_specs_dir().join(file);
            let text = std::fs::read_to_string(&path).unwrap();
            assert_eq!(
                text,
                spec.to_json() + "\n",
                "{file} drifted from its constructor; regenerate with \
                 `cargo run -p atrapos-workloads --example regen_parity_specs`"
            );
        }
    }

    #[test]
    fn spec01_runs_at_tiny_scale() {
        let scale = Scale {
            ycsb_records: 4_000,
            measure_secs: 0.002,
            phase_secs: 0.004,
            interval_min_secs: 0.002,
            interval_max_secs: 0.008,
            ..Scale::quick()
        };
        let fig = spec01_declarative_workloads(&scale);
        assert_eq!(fig.rows.len(), SPEC01_FILES.len());
        for row in &fig.rows {
            for cell in &row[1..] {
                assert!(cell.parse::<f64>().unwrap() > 0.0, "empty cell in {row:?}");
            }
        }
    }
}
