//! One function per table/figure of the paper's evaluation.

pub mod ablation;
pub mod adaptive;
pub mod motivation;
pub mod overload;
pub mod partitioning;
pub mod specs;
pub mod standard;
pub mod ycsb;

use crate::harness::Scale;
use crate::report::FigureResult;

pub use ablation::{
    abl01_uniform_interconnect, abl02_oversubscription, abl03_sub_partition_granularity,
    abl04_sharding_advisor, run_ablation, run_all_ablations, ABLATION_IDS,
};
pub use adaptive::{
    fig09_repartitioning, fig10_adapt_workload, fig10_scenario, fig11_adapt_skew, fig11_scenario,
    fig12_adapt_hardware, fig12_scenario, fig13_adapt_frequency, fig13_scenario, figure_executor,
    figure_job,
};
pub use motivation::{
    fig01_ipc, fig02_scaleup, fig03_multisite, fig04_breakdown, fig05_atrapos_scaleup,
    tab01_memory_policy,
};
pub use overload::{
    overload01_load_sweep, overload02_burst_recovery, overload02_jobs, overload02_scenario,
    OVERLOAD_IDS, OVERLOAD_MULTIPLIERS,
};
pub use partitioning::{fig06_placement, fig07_neworder_flowgraph};
pub use specs::{
    load_spec, shipped_spec, shipped_specs_dir, spec01_declarative_workloads, spec01_jobs,
    spec_job, SPEC01_FILES, SPEC_IDS,
};
pub use standard::{fig08_standard_benchmarks, tab02_monitoring_overhead};
pub use ycsb::{
    ycsb01_skew_sweep, ycsb02_drifting_hotspot, ycsb02_jobs, ycsb02_scenario, ycsb02_workload,
    ycsb_designs, ycsb_job, YCSB_IDS,
};

/// All experiment identifiers in paper order.
pub const ALL_IDS: &[&str] = &[
    "fig01", "fig02", "fig03", "fig04", "tab01", "fig05", "fig06", "fig07", "fig08", "tab02",
    "fig09", "fig10", "fig11", "fig12", "fig13",
];

/// The reproduction report set: the experiments `REPRODUCTION.md` tracks
/// with reference-trend or SLO verdicts (the headline comparisons of §VI,
/// the four ablations, the YCSB extension pair, and the open-loop
/// overload pair).  `atrapos figures` runs these by default.
pub const REPORT_IDS: &[&str] = &[
    "fig08",
    "tab02",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "abl01",
    "abl02",
    "abl03",
    "abl04",
    "ycsb01",
    "ycsb02",
    "overload01",
    "overload02",
    "spec01",
];

/// Run one experiment by id.
pub fn run_by_id(id: &str, scale: &Scale) -> Option<FigureResult> {
    match id {
        "fig01" => Some(fig01_ipc(scale)),
        "fig02" => Some(fig02_scaleup(scale)),
        "fig03" => Some(fig03_multisite(scale)),
        "fig04" => Some(fig04_breakdown(scale)),
        "tab01" => Some(tab01_memory_policy(scale)),
        "fig05" => Some(fig05_atrapos_scaleup(scale)),
        "fig06" => Some(fig06_placement(scale)),
        "fig07" => Some(fig07_neworder_flowgraph()),
        "fig08" => Some(fig08_standard_benchmarks(scale)),
        "tab02" => Some(tab02_monitoring_overhead(scale)),
        "fig09" => Some(fig09_repartitioning(scale)),
        "fig10" => Some(fig10_adapt_workload(scale)),
        "fig11" => Some(fig11_adapt_skew(scale)),
        "fig12" => Some(fig12_adapt_hardware(scale)),
        "fig13" => Some(fig13_adapt_frequency(scale)),
        // Extensions beyond the paper's figure set.
        "ycsb01" => Some(ycsb01_skew_sweep(scale)),
        "ycsb02" => Some(ycsb02_drifting_hotspot(scale)),
        "overload01" => Some(overload01_load_sweep(scale)),
        "overload02" => Some(overload02_burst_recovery(scale)),
        "spec01" => Some(spec01_declarative_workloads(scale)),
        // Ablations (not figures of the paper; see `ablation`).
        other => run_ablation(other, scale),
    }
}

/// Run every experiment in paper order.
pub fn run_all(scale: &Scale) -> Vec<FigureResult> {
    ALL_IDS
        .iter()
        .filter_map(|id| run_by_id(id, scale))
        .collect()
}
