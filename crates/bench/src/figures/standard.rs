//! The standard-benchmark experiments: Figure 8 (TATP and TPC-C throughput
//! normalized to PLP) and Table II (monitoring overhead).
//!
//! Both experiments are design sweeps — a list of independent
//! (design × workload) measurements — so they fan out over the parallel
//! experiment lab and the rows are assembled from the in-order results.

use crate::harness::{measure_jobs, measurement_job, run_meta, Scale};
use crate::report::{fmt, FigureResult};
use atrapos_engine::{AtraposConfig, DesignSpec, Workload};
use atrapos_workloads::{Tatp, TatpConfig, TatpTxn, Tpcc, TpccConfig, TpccTxn};

fn tatp_workload(scale: &Scale, txn: Option<TatpTxn>) -> Box<dyn Workload> {
    let mut w = Tatp::new(TatpConfig::scaled(scale.tatp_subscribers));
    if let Some(t) = txn {
        w.set_single(t);
    }
    Box::new(w)
}

fn tpcc_workload(scale: &Scale, txn: Option<TpccTxn>) -> Box<dyn Workload> {
    let mut w = Tpcc::new(TpccConfig::scaled(scale.tpcc_warehouses));
    if let Some(t) = txn {
        w.set_single(t);
    }
    Box::new(w)
}

/// Figure 8: throughput of ATraPos normalized over PLP for TATP transaction
/// types / mix and for the TPC-C read-only transactions / mix.
pub fn fig08_standard_benchmarks(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig08",
        "Standard benchmarks: ATraPos throughput normalized over PLP",
        vec!["workload", "PLP (KTPS)", "ATraPos (KTPS)", "ATraPos / PLP"],
    );
    let sockets = scale.max_sockets;
    let cores = scale.cores_per_socket;
    type WorkloadFactory<'a> = Box<dyn Fn() -> Box<dyn Workload> + 'a>;
    let cases: Vec<(&str, WorkloadFactory)> = vec![
        (
            "TATP GetSubData",
            Box::new(|| tatp_workload(scale, Some(TatpTxn::GetSubscriberData))),
        ),
        (
            "TATP GetNewDest",
            Box::new(|| tatp_workload(scale, Some(TatpTxn::GetNewDestination))),
        ),
        (
            "TATP UpdSubData",
            Box::new(|| tatp_workload(scale, Some(TatpTxn::UpdateSubscriberData))),
        ),
        ("TATP-Mix", Box::new(|| tatp_workload(scale, None))),
        (
            "TPCC StockLevel",
            Box::new(|| tpcc_workload(scale, Some(TpccTxn::StockLevel))),
        ),
        (
            "TPCC OrderStatus",
            Box::new(|| tpcc_workload(scale, Some(TpccTxn::OrderStatus))),
        ),
        ("TPCC-Mix", Box::new(|| tpcc_workload(scale, None))),
    ];
    // Two jobs per case (PLP, ATraPos), swept in parallel.
    let mut jobs = Vec::new();
    for (label, make) in &cases {
        for spec in [DesignSpec::Plp, DesignSpec::atrapos()] {
            jobs.push(measurement_job(
                format!("{label}/{}", spec.label()),
                sockets,
                cores,
                spec,
                make(),
                scale.measure_secs,
            ));
        }
    }
    let results = measure_jobs(jobs);
    for ((label, _), pair) in cases.iter().zip(results.chunks_exact(2)) {
        let (plp, atrapos) = (&pair[0], &pair[1]);
        let ratio = if plp.throughput_tps > 0.0 {
            atrapos.throughput_tps / plp.throughput_tps
        } else {
            0.0
        };
        fig.push_row(vec![
            label.to_string(),
            fmt(plp.throughput_tps / 1e3),
            fmt(atrapos.throughput_tps / 1e3),
            fmt(ratio),
        ]);
    }
    fig.note("paper reports 6.7x (GetSubData), 3.2x (GetNewDest), 5.4x (UpdSubData), 4.4x (TATP-Mix), 2.7x (StockLevel), 1.4x (OrderStatus), 1.5x (TPCC-Mix)");
    fig.set_meta(run_meta(sockets, cores));
    fig
}

fn monitoring_on() -> AtraposConfig {
    AtraposConfig {
        monitoring: true,
        adaptive: false,
        ..AtraposConfig::default()
    }
}

fn monitoring_off() -> AtraposConfig {
    AtraposConfig {
        monitoring: false,
        adaptive: false,
        ..AtraposConfig::default()
    }
}

/// Table II: throughput of ATraPos with and without monitoring and the
/// resulting overhead.
pub fn tab02_monitoring_overhead(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "tab02",
        "Monitoring overhead on TATP (TPS)",
        vec!["workload", "no monitoring", "monitoring", "overhead (%)"],
    );
    let sockets = scale.max_sockets;
    let cores = scale.cores_per_socket;
    let cases: Vec<(&str, Option<TatpTxn>)> = vec![
        ("GetSubData", Some(TatpTxn::GetSubscriberData)),
        ("GetNewDest", Some(TatpTxn::GetNewDestination)),
        ("UpdSubData", Some(TatpTxn::UpdateSubscriberData)),
        ("TATP-Mix", None),
    ];
    let mut jobs = Vec::new();
    for (label, txn) in &cases {
        for (tag, config) in [("off", monitoring_off()), ("on", monitoring_on())] {
            jobs.push(measurement_job(
                format!("{label}/monitoring-{tag}"),
                sockets,
                cores,
                DesignSpec::atrapos_with(config),
                tatp_workload(scale, *txn),
                scale.measure_secs,
            ));
        }
    }
    let results = measure_jobs(jobs);
    for ((label, _), pair) in cases.iter().zip(results.chunks_exact(2)) {
        let (off, on) = (&pair[0], &pair[1]);
        let overhead = if off.throughput_tps > 0.0 {
            (1.0 - on.throughput_tps / off.throughput_tps) * 100.0
        } else {
            0.0
        };
        fig.push_row(vec![
            label.to_string(),
            fmt(off.throughput_tps),
            fmt(on.throughput_tps),
            fmt(overhead),
        ]);
    }
    fig.note("paper reports at most 3.32% (GetSubData) and ~1% elsewhere");
    fig.set_meta(run_meta(sockets, cores));
    fig
}
