//! Shared helpers for building machines, designs, and executors.
//!
//! Designs are instantiated from the engine's serializable
//! [`DesignSpec`] — plain data, no function pointers — so any measurement
//! the harness can run can also be described in a replay file.
//!
//! Multi-point figures run their measurements through the engine's
//! parallel experiment lab ([`atrapos_engine::sweep`]): each measurement
//! becomes an eventless scenario job, the job list fans out over the
//! available cores, and results come back in job order, so the figures are
//! identical to a serial run.

use atrapos_engine::sweep::{default_threads, run_sweep, SweepJob};
use atrapos_engine::{DesignSpec, ExecutorConfig, RunMeta, RunStats, VirtualExecutor, Workload};
use atrapos_numa::{CostModel, Machine, Topology};
use atrapos_storage::MemoryPolicy;

/// Experiment scale: reduced by default so the whole suite runs in minutes;
/// `ATRAPOS_PAPER=1` switches to the paper's dataset sizes (slow).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Rows of the microbenchmark table (paper: 800 000).
    pub micro_rows: i64,
    /// Rows of the remote-memory microbenchmark table (paper: 1 000 000).
    pub memory_rows: i64,
    /// TATP subscribers (paper: 800 000).
    pub tatp_subscribers: i64,
    /// TPC-C warehouses (paper: 80).
    pub tpcc_warehouses: i64,
    /// YCSB records (the benchmark's standard runs use 1 M+; an extension
    /// beyond the paper's evaluation).
    pub ycsb_records: i64,
    /// Virtual seconds simulated per throughput measurement.
    pub measure_secs: f64,
    /// Virtual seconds per phase of the adaptive time-series experiments
    /// (paper: 30 s / 20 s phases).
    pub phase_secs: f64,
    /// Minimum monitoring interval in virtual seconds (paper: 1 s).
    pub interval_min_secs: f64,
    /// Maximum monitoring interval in virtual seconds (paper: 8 s).
    pub interval_max_secs: f64,
    /// Sockets × cores of the simulated machine for the heavyweight
    /// scale-up figures (paper: 8 × 10).
    pub max_sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
}

impl Scale {
    /// The reduced default scale.
    pub fn quick() -> Self {
        Self {
            micro_rows: 160_000,
            memory_rows: 200_000,
            tatp_subscribers: 40_000,
            tpcc_warehouses: 40,
            ycsb_records: 25_000,
            measure_secs: 0.03,
            phase_secs: 0.25,
            interval_min_secs: 0.05,
            interval_max_secs: 0.4,
            max_sockets: 8,
            cores_per_socket: 10,
        }
    }

    /// The paper's scale (slow: hours).
    pub fn paper() -> Self {
        Self {
            micro_rows: 800_000,
            memory_rows: 1_000_000,
            tatp_subscribers: 800_000,
            tpcc_warehouses: 80,
            ycsb_records: 1_000_000,
            measure_secs: 1.0,
            phase_secs: 30.0,
            interval_min_secs: 1.0,
            interval_max_secs: 8.0,
            max_sockets: 8,
            cores_per_socket: 10,
        }
    }

    /// Pick the scale from the `ATRAPOS_PAPER` environment variable.
    pub fn from_env() -> Self {
        if std::env::var("ATRAPOS_PAPER")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Self::paper()
        } else {
            Self::quick()
        }
    }

    /// Time-axis compression factor relative to the paper (for the adaptive
    /// experiments' captions).
    pub fn time_compression(&self) -> f64 {
        30.0 / self.phase_secs
    }
}

/// Build the simulated machine.
pub fn machine(sockets: usize, cores_per_socket: usize) -> Machine {
    Machine::new(
        Topology::multisocket(sockets, cores_per_socket),
        CostModel::westmere(),
    )
}

/// The provenance record of a harness measurement on the standard machine:
/// the fixed seed (42) and the experiment lab's thread count.
pub fn run_meta(sockets: usize, cores_per_socket: usize) -> RunMeta {
    RunMeta::of(&machine(sockets, cores_per_socket), 42, default_threads())
}

/// Build an executor for (design, workload, machine).
pub fn executor(
    machine: Machine,
    spec: &DesignSpec,
    workload: Box<dyn Workload>,
    interval_secs: f64,
) -> VirtualExecutor {
    let design = spec.build(&machine, workload.as_ref());
    VirtualExecutor::new(
        machine,
        design,
        workload,
        ExecutorConfig {
            seed: 42,
            default_interval_secs: interval_secs,
            time_series_bucket_secs: interval_secs,
        },
    )
}

/// Build, run for `secs` virtual seconds, and return the stats — the basic
/// single-point measurement most figures are made of.
pub fn measure(
    sockets: usize,
    cores_per_socket: usize,
    spec: &DesignSpec,
    workload: Box<dyn Workload>,
    secs: f64,
) -> RunStats {
    let m = machine(sockets, cores_per_socket);
    let mut ex = executor(m, spec, workload, secs.max(0.01));
    ex.run_for(secs)
}

/// The [`ExecutorConfig`] every harness measurement uses: fixed seed, the
/// monitoring interval and time-series bucket equal to the measurement
/// length (floored at 10 ms of virtual time).
pub fn measurement_config(interval_secs: f64) -> ExecutorConfig {
    let interval_secs = interval_secs.max(0.01);
    ExecutorConfig {
        seed: 42,
        default_interval_secs: interval_secs,
        time_series_bucket_secs: interval_secs,
    }
}

/// A [`SweepJob`] equivalent to one [`measure`] call: an eventless scenario
/// of `secs` virtual seconds on the standard machine.
pub fn measurement_job(
    name: impl Into<String>,
    sockets: usize,
    cores_per_socket: usize,
    spec: DesignSpec,
    workload: Box<dyn Workload>,
    secs: f64,
) -> SweepJob {
    SweepJob::measurement(
        name,
        machine(sockets, cores_per_socket),
        spec,
        workload,
        secs,
        measurement_config(secs),
    )
}

/// Run a list of measurement jobs on the lab's thread pool and return each
/// job's [`RunStats`] in job order.  Panics if a job fails — harness jobs
/// are built from valid eventless scenarios, so a failure is a bug.
pub fn measure_jobs(jobs: Vec<SweepJob>) -> Vec<RunStats> {
    run_sweep(jobs, default_threads())
        .into_iter()
        .map(|r| {
            let name = r.name;
            let mut outcome = r
                .outcome
                .unwrap_or_else(|e| panic!("measurement job '{name}' failed: {e}"));
            assert_eq!(
                outcome.segments.len(),
                1,
                "measurement job '{name}' is a single eventless segment"
            );
            outcome.segments.remove(0).stats
        })
        .collect()
}

/// Build a shared-nothing (per socket) executor with an explicit memory
/// policy (Table I).
pub fn measure_with_memory_policy(
    sockets: usize,
    cores_per_socket: usize,
    policy: MemoryPolicy,
    workload: Box<dyn Workload>,
    secs: f64,
) -> RunStats {
    measure(
        sockets,
        cores_per_socket,
        &DesignSpec::shared_nothing_with_memory_policy(policy),
        workload,
        secs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atrapos_workloads::ReadOneRow;

    #[test]
    fn scale_presets_differ() {
        let q = Scale::quick();
        let p = Scale::paper();
        assert!(p.micro_rows > q.micro_rows);
        assert!(p.phase_secs > q.phase_secs);
        assert!(q.time_compression() > 1.0);
    }

    #[test]
    fn measurement_jobs_reproduce_serial_measure_exactly() {
        let spec = DesignSpec::atrapos();
        let serial = measure(1, 2, &spec, Box::new(ReadOneRow::with_rows(2_000)), 0.002);
        let jobs = vec![measurement_job(
            "read-one-row/ATraPos",
            1,
            2,
            spec,
            Box::new(ReadOneRow::with_rows(2_000)),
            0.002,
        )];
        let via_lab = measure_jobs(jobs).remove(0);
        assert_eq!(
            serde::json::to_string_pretty(&serial),
            serde::json::to_string_pretty(&via_lab),
            "the lab's eventless-scenario measurement must be a pure reformulation of measure()"
        );
    }

    #[test]
    fn measure_runs_every_design_spec() {
        for spec in [
            DesignSpec::Centralized,
            DesignSpec::extreme_shared_nothing(false),
            DesignSpec::coarse_shared_nothing(),
            DesignSpec::Plp,
            DesignSpec::atrapos(),
        ] {
            let stats = measure(1, 2, &spec, Box::new(ReadOneRow::with_rows(2_000)), 0.002);
            assert!(stats.committed > 0, "{} committed nothing", spec.label());
        }
    }
}
