//! Shared helpers for building machines, designs, and executors.

use atrapos_engine::{
    AtraposConfig, AtraposDesign, CentralizedDesign, ExecutorConfig, PlpDesign, RunStats,
    SharedNothingDesign, SharedNothingGranularity, SystemDesign, VirtualExecutor, Workload,
};
use atrapos_numa::{CostModel, Machine, Topology};
use atrapos_storage::MemoryPolicy;

/// Which system design to instantiate.
#[derive(Debug, Clone, Copy)]
pub enum DesignKind {
    /// Centralized shared-everything (stock Shore-MT).
    Centralized,
    /// Extreme shared-nothing: one instance per core, locking disabled for
    /// read-only workloads.
    ExtremeSharedNothing {
        /// Whether locking/latching is enabled.
        locking: bool,
    },
    /// Coarse shared-nothing: one instance per socket.
    CoarseSharedNothing,
    /// PLP (physiological partitioning).
    Plp,
    /// ATraPos with its default configuration.
    Atrapos,
    /// ATraPos with a custom configuration.
    AtraposWith(fn() -> AtraposConfig),
}

impl DesignKind {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            DesignKind::Centralized => "Centralized",
            DesignKind::ExtremeSharedNothing { .. } => "Extreme shared-nothing",
            DesignKind::CoarseSharedNothing => "Coarse shared-nothing",
            DesignKind::Plp => "PLP",
            DesignKind::Atrapos => "ATraPos",
            DesignKind::AtraposWith(_) => "ATraPos (custom)",
        }
    }

    /// Instantiate the design for `machine` and `workload`.
    pub fn build(&self, machine: &Machine, workload: &dyn Workload) -> Box<dyn SystemDesign> {
        match self {
            DesignKind::Centralized => Box::new(CentralizedDesign::new(machine, workload)),
            DesignKind::ExtremeSharedNothing { locking } => Box::new(
                SharedNothingDesign::new(machine, workload, SharedNothingGranularity::PerCore)
                    .with_locking(*locking),
            ),
            DesignKind::CoarseSharedNothing => Box::new(SharedNothingDesign::new(
                machine,
                workload,
                SharedNothingGranularity::PerSocket,
            )),
            DesignKind::Plp => Box::new(PlpDesign::new(machine, workload)),
            DesignKind::Atrapos => Box::new(AtraposDesign::new(
                machine,
                workload,
                AtraposConfig::default(),
            )),
            DesignKind::AtraposWith(make) => {
                Box::new(AtraposDesign::new(machine, workload, make()))
            }
        }
    }
}

/// Experiment scale: reduced by default so the whole suite runs in minutes;
/// `ATRAPOS_PAPER=1` switches to the paper's dataset sizes (slow).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Rows of the microbenchmark table (paper: 800 000).
    pub micro_rows: i64,
    /// Rows of the remote-memory microbenchmark table (paper: 1 000 000).
    pub memory_rows: i64,
    /// TATP subscribers (paper: 800 000).
    pub tatp_subscribers: i64,
    /// TPC-C warehouses (paper: 80).
    pub tpcc_warehouses: i64,
    /// Virtual seconds simulated per throughput measurement.
    pub measure_secs: f64,
    /// Virtual seconds per phase of the adaptive time-series experiments
    /// (paper: 30 s / 20 s phases).
    pub phase_secs: f64,
    /// Minimum monitoring interval in virtual seconds (paper: 1 s).
    pub interval_min_secs: f64,
    /// Maximum monitoring interval in virtual seconds (paper: 8 s).
    pub interval_max_secs: f64,
    /// Sockets × cores of the simulated machine for the heavyweight
    /// scale-up figures (paper: 8 × 10).
    pub max_sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
}

impl Scale {
    /// The reduced default scale.
    pub fn quick() -> Self {
        Self {
            micro_rows: 160_000,
            memory_rows: 200_000,
            tatp_subscribers: 40_000,
            tpcc_warehouses: 40,
            measure_secs: 0.03,
            phase_secs: 0.25,
            interval_min_secs: 0.05,
            interval_max_secs: 0.4,
            max_sockets: 8,
            cores_per_socket: 10,
        }
    }

    /// The paper's scale (slow: hours).
    pub fn paper() -> Self {
        Self {
            micro_rows: 800_000,
            memory_rows: 1_000_000,
            tatp_subscribers: 800_000,
            tpcc_warehouses: 80,
            measure_secs: 1.0,
            phase_secs: 30.0,
            interval_min_secs: 1.0,
            interval_max_secs: 8.0,
            max_sockets: 8,
            cores_per_socket: 10,
        }
    }

    /// Pick the scale from the `ATRAPOS_PAPER` environment variable.
    pub fn from_env() -> Self {
        if std::env::var("ATRAPOS_PAPER").map(|v| v == "1").unwrap_or(false) {
            Self::paper()
        } else {
            Self::quick()
        }
    }

    /// Time-axis compression factor relative to the paper (for the adaptive
    /// experiments' captions).
    pub fn time_compression(&self) -> f64 {
        30.0 / self.phase_secs
    }
}

/// Build the simulated machine.
pub fn machine(sockets: usize, cores_per_socket: usize) -> Machine {
    Machine::new(
        Topology::multisocket(sockets, cores_per_socket),
        CostModel::westmere(),
    )
}

/// Build an executor for (design, workload, machine).
pub fn executor(
    machine: Machine,
    kind: DesignKind,
    workload: Box<dyn Workload>,
    interval_secs: f64,
) -> VirtualExecutor {
    let design = kind.build(&machine, workload.as_ref());
    VirtualExecutor::new(
        machine,
        design,
        workload,
        ExecutorConfig {
            seed: 42,
            default_interval_secs: interval_secs,
            time_series_bucket_secs: interval_secs,
        },
    )
}

/// Build, run for `secs` virtual seconds, and return the stats — the basic
/// single-point measurement most figures are made of.
pub fn measure(
    sockets: usize,
    cores_per_socket: usize,
    kind: DesignKind,
    workload: Box<dyn Workload>,
    secs: f64,
) -> RunStats {
    let m = machine(sockets, cores_per_socket);
    let mut ex = executor(m, kind, workload, secs.max(0.01));
    ex.run_for(secs)
}

/// Build a shared-nothing (per socket) executor with an explicit memory
/// policy (Table I).
pub fn measure_with_memory_policy(
    sockets: usize,
    cores_per_socket: usize,
    policy: MemoryPolicy,
    workload: Box<dyn Workload>,
    secs: f64,
) -> RunStats {
    let m = machine(sockets, cores_per_socket);
    let design = Box::new(
        SharedNothingDesign::with_memory_policy(
            &m,
            workload.as_ref(),
            SharedNothingGranularity::PerSocket,
            policy,
        )
        .with_locking(false),
    );
    let mut ex = VirtualExecutor::new(
        m,
        design,
        workload,
        ExecutorConfig {
            seed: 42,
            default_interval_secs: secs.max(0.01),
            time_series_bucket_secs: secs.max(0.01),
        },
    );
    ex.run_for(secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atrapos_workloads::ReadOneRow;

    #[test]
    fn scale_presets_differ() {
        let q = Scale::quick();
        let p = Scale::paper();
        assert!(p.micro_rows > q.micro_rows);
        assert!(p.phase_secs > q.phase_secs);
        assert!(q.time_compression() > 1.0);
    }

    #[test]
    fn measure_runs_every_design_kind() {
        for kind in [
            DesignKind::Centralized,
            DesignKind::ExtremeSharedNothing { locking: false },
            DesignKind::CoarseSharedNothing,
            DesignKind::Plp,
            DesignKind::Atrapos,
        ] {
            let stats = measure(
                1,
                2,
                kind,
                Box::new(ReadOneRow::with_rows(2_000)),
                0.002,
            );
            assert!(stats.committed > 0, "{} committed nothing", kind.label());
        }
    }
}
