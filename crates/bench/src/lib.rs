//! # atrapos-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! ATraPos (ICDE 2014) evaluation on the simulated hardware-Island machine.
//!
//! * [`figures`] — one function per experiment (`fig01` … `fig13`, `tab01`,
//!   `tab02`), each returning a [`report::FigureResult`] with the same rows
//!   or series the paper reports.
//! * [`harness`] — shared helpers for building machines, designs, and
//!   executors.
//! * [`report`] — plain-text rendering of the results.
//!
//! Run everything with `cargo bench -p atrapos-bench --bench figures`, or a
//! single experiment with
//! `cargo run --release -p atrapos-bench --bin figures -- fig02`.
//! Set `ATRAPOS_PAPER=1` to use the paper-sized datasets and durations
//! (slower); the default scale is reduced so the whole suite completes in
//! a few minutes (the scaling factors are listed in `EXPERIMENTS.md`).

pub mod figures;
pub mod harness;
pub mod report;

pub use atrapos_engine::DesignSpec;
pub use harness::Scale;
pub use report::FigureResult;
