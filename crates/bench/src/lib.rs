//! # atrapos-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! ATraPos (ICDE 2014) evaluation on the simulated hardware-Island machine,
//! behind the single `atrapos` command-line binary.
//!
//! * [`cli`] — strict flag parsing shared by every subcommand (unknown
//!   flags are errors, not silently ignored defaults).
//! * [`figures`] — one function per experiment (`fig01` … `fig13`, `tab01`,
//!   `tab02`, the ablations), each returning a serializable
//!   [`report::FigureResult`] with the same rows or series the paper
//!   reports.
//! * [`harness`] — shared helpers for building machines, designs, and
//!   executors, plus the bridge to the engine's parallel experiment lab.
//! * [`report`] — where the JSON artifacts live (`reports/BENCH_*.json`);
//!   the result model itself comes from `atrapos-report`.
//! * [`replay`] — complete experiments (machine + design + timeline) as
//!   JSON files.
//! * [`shootout`] — ad-hoc design sweeps over a workload.
//! * [`wallclock`] — the simulator's own wall-clock benchmark bundle.
//! * [`workload_cmd`] — the `atrapos workload check|run` subcommand over
//!   declarative `WorkloadSpec` JSON files.
//!
//! Run `cargo run --release -p atrapos-bench --bin atrapos -- help` for the
//! CLI surface; `atrapos figures && atrapos report` regenerates the
//! experiment data and renders `REPRODUCTION.md` from it.  Set
//! `ATRAPOS_PAPER=1` to use the paper-sized datasets and durations
//! (slower); the default scale is reduced so the whole suite completes in
//! a few minutes.
//!
//! ---
//!
//! The repository README follows, included here so that its code examples
//! compile and run as doctests under `cargo test`:
#![doc = include_str!("../../../README.md")]

pub mod cli;
pub mod figures;
pub mod harness;
pub mod replay;
pub mod report;
pub mod shootout;
pub mod wallclock;
pub mod workload_cmd;

pub use atrapos_engine::DesignSpec;
pub use harness::Scale;
pub use report::FigureResult;
