//! Wall-clock benchmark of the simulator itself (`atrapos wallclock`)
//! and the perf-regression gate over its trajectory
//! (`atrapos wallclock --check`).
//!
//! Times a fixed scenario bundle — the adaptive TATP figure timelines
//! (Figures 10–13), TATP and TPC-C design sweeps, and a YCSB-A Zipfian
//! sweep on the paper's 4-socket machine across all four system designs —
//! and records the result in `reports/BENCH_wallclock.json`.  Successive
//! runs with different labels append to the same file, so the repo
//! accumulates a wall-clock trajectory (e.g. a `pre-refactor` and a
//! `post-refactor` entry per optimization PR).
//!
//! Every entry embeds a [`WallclockMeta`]: the *host* fingerprint
//! ([`HostFingerprint`]) of the machine that produced the wall-clock
//! numbers, the [`RunMeta`] of the simulated sweep machine, and a source
//! label (the git revision where obtainable).  Wall-clock milliseconds
//! only mean something relative to entries from the same host at the same
//! thread count, and the gate enforces exactly that:
//!
//! **Baseline-selection rule.** `--check` takes the *last* entry of the
//! file as the run under test and searches the *earlier* entries, newest
//! first, for one with the same host fingerprint, the same `threads`, and
//! the same `smoke` flag.  Entries recorded before fingerprints existed
//! (`meta: null`) are never comparable.  If no entry qualifies the check
//! passes with a notice (a fresh host has no baseline to regress
//! against); otherwise any component whose `wall_ms` — or the bundle
//! total — exceeds the baseline by more than the tolerance (default
//! [`DEFAULT_TOLERANCE_PCT`]%, `--tolerance` flag) fails the check with a
//! per-component table.
//!
//! `speedup_vs_first` uses the same comparability rule: it is the ratio
//! of the oldest to the newest entry among full (non-smoke) runs
//! comparable to the newest full run, and `null` when fewer than two such
//! entries exist — it never again compares a serial run on one host
//! against a threaded run on another.
//!
//! The ~20 components of the bundle are independent deterministic
//! simulations, so they run as one job list on the engine's parallel
//! experiment lab (`--threads N`, default: all available cores).  The
//! bundle is fixed (no `ATRAPOS_PAPER` dependence) so that entries
//! written at different times stay comparable, and the gate compares
//! components *by name*, so extending the bundle (as the YCSB components
//! did) leaves existing components gated while new ones simply have no
//! baseline yet.  `total_committed` is the total number of simulated
//! transactions the bundle commits; it must be identical across runs of
//! the same source revision, across behaviour-preserving optimizations,
//! *and across thread counts* (same seed ⇒ same simulated work), so it
//! doubles as a cheap cross-run determinism check.

use crate::cli::{self, FlagSpec};
use crate::figures::{fig10_scenario, fig11_scenario, fig12_scenario, fig13_scenario, figure_job};
use crate::harness::{machine, measurement_config, Scale};
use crate::report::report_dir;
use atrapos_engine::sweep::{default_threads, run_sweep, SweepJob};
use atrapos_engine::{DesignSpec, HostFingerprint, RunMeta, Workload};
use atrapos_workloads::{Tatp, TatpConfig, TatpTxn, Tpcc, TpccConfig, Ycsb, YcsbConfig};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Default regression tolerance of the gate, in percent: a component (or
/// the total) may be up to this much slower than its baseline before
/// `--check` fails.
pub const DEFAULT_TOLERANCE_PCT: f64 = 10.0;

/// One timed component of the bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentTiming {
    /// Component name (e.g. `fig10/atrapos`, `tpcc/Centralized`).
    pub name: String,
    /// Wall-clock milliseconds spent simulating this component, excluding
    /// design build / data population (measured on its worker thread; with
    /// more jobs than cores the per-component times overlap and their sum
    /// exceeds `total_ms`).
    pub wall_ms: f64,
    /// Transactions committed inside the simulation.
    pub committed: u64,
}

/// Provenance of one wall-clock entry: who measured it, on what hardware,
/// from which source revision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WallclockMeta {
    /// Fingerprint of the host that produced the wall-clock numbers — the
    /// gate's comparability key.
    pub host: HostFingerprint,
    /// The simulated sweep machine, seed, and lab thread count.
    pub lab: RunMeta,
    /// Source revision label (`git` short hash, `+dirty` when the tree had
    /// uncommitted changes), or `"unknown"` outside a git checkout.
    pub source: String,
}

/// One labelled run of the whole bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WallclockRun {
    /// Run label (`pre-refactor`, `post-refactor`, `smoke`, …).
    pub label: String,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_secs: u64,
    /// Whether this was the reduced CI smoke bundle.
    pub smoke: bool,
    /// OS threads the bundle ran on (`null` in entries recorded before the
    /// parallel lab existed, which were serial).
    pub threads: Option<usize>,
    /// Host fingerprint + lab meta + source label (`null` in entries
    /// recorded before the gate existed; such entries are never used as
    /// baselines).
    pub meta: Option<WallclockMeta>,
    /// Per-component timings.
    pub components: Vec<ComponentTiming>,
    /// Total wall-clock milliseconds over all components.
    pub total_ms: f64,
    /// Total committed transactions over all components (cross-run
    /// determinism check: identical for behaviour-preserving changes and
    /// for every `--threads` value).
    pub total_committed: u64,
}

/// The whole report file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WallclockReport {
    /// Schema tag.
    pub schema: String,
    /// Accumulated runs, oldest first.
    pub runs: Vec<WallclockRun>,
    /// `oldest.total_ms / newest.total_ms` over the full (non-smoke) runs
    /// comparable to the newest full run under the gate's baseline rule
    /// (same host fingerprint and thread count) — > 1.0 means the latest
    /// run is faster.  `null` when fewer than two comparable entries
    /// exist.
    pub speedup_vs_first: Option<f64>,
}

/// Schema tag written to new and updated report files.  v2 added the
/// optional per-entry `meta` and restricted `speedup_vs_first` to
/// gate-comparable entries; v1 files load unchanged (`meta` defaults to
/// `null`).
pub const SCHEMA: &str = "atrapos-wallclock-v2";

/// Fixed bundle scale (matches `Scale::quick` where relevant; pinned here
/// so the bundle cannot drift with harness defaults).
fn bundle_scale(smoke: bool) -> Scale {
    let mut s = Scale::quick();
    if smoke {
        s.tatp_subscribers /= 10;
        s.tpcc_warehouses = 4;
        s.ycsb_records /= 10;
        s.measure_secs /= 10.0;
        s.phase_secs /= 10.0;
    }
    s
}

/// The four designs of the sweep components.
fn sweep_designs() -> Vec<DesignSpec> {
    vec![
        DesignSpec::Centralized,
        DesignSpec::coarse_shared_nothing(),
        DesignSpec::Plp,
        DesignSpec::atrapos(),
    ]
}

/// Design-sweep jobs: `workload` against each of the four designs on the
/// 4-socket, 10-cores-per-socket machine.
fn sweep_jobs(
    workload_name: &str,
    make_workload: &dyn Fn() -> Box<dyn Workload>,
    secs: f64,
    out: &mut Vec<SweepJob>,
) {
    for spec in sweep_designs() {
        out.push(SweepJob::measurement(
            format!("{workload_name}/{}", spec.label()),
            machine(4, 10),
            spec,
            make_workload(),
            secs,
            measurement_config(secs),
        ));
    }
}

/// Every component of the bundle as one lab job list, in the fixed
/// historical order (the gate compares components by name, so appending
/// new components keeps old ones gated).
fn bundle_jobs(scale: &Scale) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    // The four adaptive-figure timelines, under both variants where the
    // figure compares them.
    for (name, adaptive, initial, scenario) in [
        (
            "fig10/static",
            false,
            TatpTxn::UpdateSubscriberData,
            fig10_scenario(scale),
        ),
        (
            "fig10/atrapos",
            true,
            TatpTxn::UpdateSubscriberData,
            fig10_scenario(scale),
        ),
        (
            "fig11/static",
            false,
            TatpTxn::GetSubscriberData,
            fig11_scenario(scale),
        ),
        (
            "fig11/atrapos",
            true,
            TatpTxn::GetSubscriberData,
            fig11_scenario(scale),
        ),
        (
            "fig12/static",
            false,
            TatpTxn::GetSubscriberData,
            fig12_scenario(scale),
        ),
        (
            "fig12/atrapos",
            true,
            TatpTxn::GetSubscriberData,
            fig12_scenario(scale),
        ),
        (
            "fig13/atrapos",
            true,
            TatpTxn::GetNewDestination,
            fig13_scenario(scale),
        ),
    ] {
        jobs.push(figure_job(name, scale, adaptive, initial, &scenario));
    }
    // Design sweeps on the 4-socket, 10-cores-per-socket machine.
    let tatp_subs = scale.tatp_subscribers;
    sweep_jobs(
        "tatp",
        &|| Box::new(Tatp::new(TatpConfig::scaled(tatp_subs))),
        scale.measure_secs,
        &mut jobs,
    );
    let warehouses = scale.tpcc_warehouses;
    sweep_jobs(
        "tpcc",
        &|| Box::new(Tpcc::new(TpccConfig::scaled(warehouses))),
        scale.measure_secs,
        &mut jobs,
    );
    // YCSB-A at the standard Zipfian skew: the only bundle components that
    // exercise the precomputed-CDF sampler hot path.
    let ycsb_records = scale.ycsb_records;
    sweep_jobs(
        "ycsb",
        &|| {
            Box::new(Ycsb::new(
                YcsbConfig::workload_a(ycsb_records).with_theta(0.99),
            ))
        },
        scale.measure_secs,
        &mut jobs,
    );
    jobs
}

fn run_bundle(scale: &Scale, threads: usize) -> Vec<ComponentTiming> {
    run_sweep(bundle_jobs(scale), threads)
        .into_iter()
        .map(|r| {
            let outcome = r
                .outcome
                .unwrap_or_else(|e| panic!("bundle component '{}' failed: {e}", r.name));
            ComponentTiming {
                name: r.name,
                wall_ms: r.wall_ms,
                committed: outcome.total_committed(),
            }
        })
        .collect()
}

/// The source label recorded in [`WallclockMeta`]: the short git hash of
/// `HEAD`, with `+dirty` appended when the working tree differs from it;
/// `"unknown"` when git (or the repository) is unavailable.
fn source_label() -> String {
    let git = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
    };
    match git(&["rev-parse", "--short", "HEAD"]) {
        Some(rev) if !rev.is_empty() => {
            let dirty = git(&["status", "--porcelain"]).is_none_or(|s| !s.is_empty());
            if dirty {
                format!("{rev}+dirty")
            } else {
                rev
            }
        }
        _ => "unknown".to_string(),
    }
}

const RUN_USAGE: &str =
    "atrapos wallclock [--label L] [--threads N] [--smoke] | --check [--tolerance PCT]";

/// Entry point of `atrapos wallclock`: run the bundle and append an entry,
/// or, with `--check`, gate the last entry against its baseline.
pub fn run(args: &[String]) -> Result<(), String> {
    let parsed = cli::parse(
        args,
        &[
            FlagSpec::switch("--smoke"),
            FlagSpec::switch("--check"),
            FlagSpec::value("--label"),
            FlagSpec::value("--threads"),
            FlagSpec::value("--tolerance"),
        ],
        0,
        RUN_USAGE,
    )?;
    if parsed.has("--check") {
        for incompatible in ["--smoke", "--label", "--threads"] {
            if parsed.has(incompatible) {
                return Err(format!(
                    "'{incompatible}' does not apply to --check (the gate examines \
                     the last recorded entry)\n\nUSAGE: {RUN_USAGE}"
                ));
            }
        }
        let tolerance = match parsed.value("--tolerance") {
            Some(t) => t
                .parse::<f64>()
                .ok()
                .filter(|t| t.is_finite() && *t >= 0.0)
                .ok_or(format!(
                    "--tolerance needs a non-negative percentage (e.g. --tolerance 15)\
                     \n\nUSAGE: {RUN_USAGE}"
                ))?,
            None => DEFAULT_TOLERANCE_PCT,
        };
        return check(tolerance);
    }
    if parsed.has("--tolerance") {
        return Err(format!(
            "'--tolerance' only applies to --check\n\nUSAGE: {RUN_USAGE}"
        ));
    }
    let smoke = parsed.has("--smoke");
    let label = parsed
        .value("--label")
        .map(str::to_string)
        .unwrap_or_else(|| if smoke { "smoke".into() } else { "run".into() });
    let threads = match parsed.value("--threads") {
        Some(t) => t.parse::<usize>().ok().filter(|&n| n >= 1).ok_or(format!(
            "--threads needs a positive integer\n\nUSAGE: {RUN_USAGE}"
        ))?,
        None => default_threads(),
    };
    run_bundle_and_record(smoke, label, threads)
}

fn run_bundle_and_record(smoke: bool, label: String, threads: usize) -> Result<(), String> {
    let scale = bundle_scale(smoke);
    eprintln!(
        "running wallclock bundle '{label}' on {threads} thread{}{}",
        if threads == 1 { "" } else { "s" },
        if smoke { " (smoke)" } else { "" }
    );
    let total_start = Instant::now();
    let components = run_bundle(&scale, threads);
    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
    let total_committed = components.iter().map(|c| c.committed).sum();

    for c in &components {
        eprintln!(
            "  {:<28} {:>9.1} ms  {:>9} committed",
            c.name, c.wall_ms, c.committed
        );
    }
    eprintln!(
        "  {:<28} {:>9.1} ms  {:>9} committed",
        "TOTAL", total_ms, total_committed
    );

    let run = WallclockRun {
        label,
        unix_secs: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        smoke,
        threads: Some(threads),
        meta: Some(WallclockMeta {
            host: HostFingerprint::detect(),
            lab: RunMeta::of(&machine(4, 10), 42, threads),
            source: source_label(),
        }),
        components,
        total_ms,
        total_committed,
    };

    let dir = report_dir();
    let path = wallclock_path(&dir);
    let mut report = load_report(&path)?;
    report.runs.push(run);
    report.schema = SCHEMA.to_string();
    report.speedup_vs_first = speedup_vs_first(&report.runs);
    if let Some(s) = report.speedup_vs_first {
        eprintln!("  speedup vs first comparable full run: {s:.2}x");
    }
    let written = write_report(&dir, &report)?;
    eprintln!("wrote {}", written.display());
    Ok(())
}

/// The report path inside `dir`.
pub fn wallclock_path(dir: &Path) -> PathBuf {
    dir.join("BENCH_wallclock.json")
}

/// Load the report at `path`, or an empty one if the file does not exist.
/// An unreadable file is an error: never silently wipe an accumulated
/// trajectory — the baseline entries in it are irreplaceable.
pub fn load_report(path: &Path) -> Result<WallclockReport, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => serde::json::from_str::<WallclockReport>(&text).map_err(|e| {
            format!(
                "existing {} is unreadable: {e}\nfix or remove the file, then re-run",
                path.display()
            )
        }),
        Err(_) => Ok(WallclockReport {
            schema: SCHEMA.to_string(),
            runs: Vec::new(),
            speedup_vs_first: None,
        }),
    }
}

/// Write `report` into `dir`, creating the directory as needed.  Both the
/// directory creation and the write propagate failures: a smoke run whose
/// report cannot be written must fail, not "pass" having written nothing.
pub fn write_report(dir: &Path, report: &WallclockReport) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create report directory {}: {e}", dir.display()))?;
    let path = wallclock_path(dir);
    std::fs::write(&path, serde::json::to_string_pretty(report))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Whether `candidate` may serve as a wall-clock baseline for `current`:
/// same host fingerprint, same lab thread count, same smoke flag.
/// Entries without a fingerprint are never comparable.
pub fn comparable(candidate: &WallclockRun, current: &WallclockRun) -> bool {
    match (&candidate.meta, &current.meta) {
        (Some(c), Some(r)) => {
            c.host == r.host
                && candidate.threads == current.threads
                && candidate.smoke == current.smoke
        }
        _ => false,
    }
}

/// The gate's baseline-selection rule: the most recent entry of `pool`
/// comparable to `current` (see [`comparable`]).
pub fn select_baseline<'a>(
    pool: &'a [WallclockRun],
    current: &WallclockRun,
) -> Option<&'a WallclockRun> {
    pool.iter().rev().find(|r| comparable(r, current))
}

/// `speedup_vs_first` under the comparability rule: oldest vs newest
/// among the full (non-smoke) runs comparable to the newest full run.
pub fn speedup_vs_first(runs: &[WallclockRun]) -> Option<f64> {
    let newest_full = runs.iter().rev().find(|r| !r.smoke)?;
    let comparable_full: Vec<&WallclockRun> = runs
        .iter()
        .filter(|r| !r.smoke && (std::ptr::eq(*r, newest_full) || comparable(r, newest_full)))
        .collect();
    match (comparable_full.first(), comparable_full.last()) {
        (Some(first), Some(last)) if comparable_full.len() >= 2 && last.total_ms > 0.0 => {
            Some(first.total_ms / last.total_ms)
        }
        _ => None,
    }
}

/// One gated comparison row.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Component name (or `"TOTAL"`).
    pub name: String,
    /// Baseline milliseconds.
    pub baseline_ms: f64,
    /// Current milliseconds.
    pub current_ms: f64,
    /// Whether the row exceeds the tolerance.
    pub regressed: bool,
}

impl GateRow {
    /// Percentage change vs the baseline (positive = slower).
    pub fn delta_pct(&self) -> f64 {
        if self.baseline_ms > 0.0 {
            (self.current_ms / self.baseline_ms - 1.0) * 100.0
        } else {
            0.0
        }
    }
}

/// Outcome of gating one run against the trajectory.
#[derive(Debug, Clone)]
pub enum GateOutcome {
    /// No earlier entry qualifies as a baseline; the gate passes with this
    /// human-readable explanation.
    NoBaseline {
        /// Why nothing qualified (fresh host, thread-count mismatch, …).
        reason: String,
    },
    /// Compared against a baseline.
    Compared {
        /// Label of the selected baseline entry.
        baseline_label: String,
        /// Per-component rows plus the `TOTAL` row, in bundle order.
        rows: Vec<GateRow>,
        /// Components present on only one side (new or vanished bundle
        /// components; listed, never failed on).
        unmatched: Vec<String>,
    },
}

impl GateOutcome {
    /// Whether any gated row regressed.
    pub fn failed(&self) -> bool {
        match self {
            GateOutcome::NoBaseline { .. } => false,
            GateOutcome::Compared { rows, .. } => rows.iter().any(|r| r.regressed),
        }
    }
}

/// Explain why no baseline qualified for `current`, pointing at the
/// nearest miss so CI logs show *which* rule excluded it.
fn no_baseline_reason(pool: &[WallclockRun], current: &WallclockRun) -> String {
    let Some(meta) = &current.meta else {
        return "the entry under test has no host fingerprint (recorded before the gate existed)"
            .to_string();
    };
    let same_host: Vec<&WallclockRun> = pool
        .iter()
        .filter(|r| r.meta.as_ref().is_some_and(|m| m.host == meta.host))
        .collect();
    if same_host.is_empty() {
        return format!(
            "no earlier entry was recorded on this host ({})",
            meta.host.summary()
        );
    }
    // Same host but rejected — say why, for the most recent candidate.
    let near = same_host.last().expect("non-empty");
    let mut why = Vec::new();
    if near.threads != current.threads {
        why.push(format!(
            "it ran on {} lab thread(s), this run on {} — thread-count mismatch",
            near.threads.map_or("unknown".into(), |t| t.to_string()),
            current.threads.map_or("unknown".into(), |t| t.to_string()),
        ));
    }
    if near.smoke != current.smoke {
        why.push(format!(
            "it is a {} run, this is a {} run",
            if near.smoke { "smoke" } else { "full" },
            if current.smoke { "smoke" } else { "full" }
        ));
    }
    format!(
        "{} same-host entr{} found, but the nearest ('{}') is not comparable: {}",
        same_host.len(),
        if same_host.len() == 1 { "y" } else { "ies" },
        near.label,
        why.join("; ")
    )
}

/// Gate the last entry of `runs` against the entries before it.  Pure —
/// all I/O stays in the CLI-facing `check` — so synthetic trajectories
/// can unit-test every verdict.
pub fn gate_last_run(runs: &[WallclockRun], tolerance_pct: f64) -> Result<GateOutcome, String> {
    let (current, pool) = runs
        .split_last()
        .ok_or("the wallclock report holds no runs — run `atrapos wallclock` first")?;
    let Some(baseline) = select_baseline(pool, current) else {
        return Ok(GateOutcome::NoBaseline {
            reason: no_baseline_reason(pool, current),
        });
    };
    let allowed = 1.0 + tolerance_pct / 100.0;
    let mut rows = Vec::new();
    let mut unmatched = Vec::new();
    for c in &current.components {
        match baseline.components.iter().find(|b| b.name == c.name) {
            Some(b) => rows.push(GateRow {
                name: c.name.clone(),
                baseline_ms: b.wall_ms,
                current_ms: c.wall_ms,
                regressed: c.wall_ms > b.wall_ms * allowed,
            }),
            None => unmatched.push(format!("{} (no baseline)", c.name)),
        }
    }
    for b in &baseline.components {
        if !current.components.iter().any(|c| c.name == b.name) {
            unmatched.push(format!("{} (gone from bundle)", b.name));
        }
    }
    rows.push(GateRow {
        name: "TOTAL".to_string(),
        baseline_ms: baseline.total_ms,
        current_ms: current.total_ms,
        regressed: current.total_ms > baseline.total_ms * allowed,
    });
    Ok(GateOutcome::Compared {
        baseline_label: baseline.label.clone(),
        rows,
        unmatched,
    })
}

/// `atrapos wallclock --check`: load the report, gate its last entry, and
/// print the verdict.  Returns `Err` — nonzero exit — on regression.
fn check(tolerance_pct: f64) -> Result<(), String> {
    let path = wallclock_path(&report_dir());
    if !std::fs::metadata(&path).is_ok_and(|m| m.is_file()) {
        return Err(format!(
            "{} not found — run `atrapos wallclock` first",
            path.display()
        ));
    }
    let report = load_report(&path)?;
    let outcome = gate_last_run(&report.runs, tolerance_pct)?;
    let current = report.runs.last().expect("gate_last_run checked");
    eprintln!(
        "checking entry '{}' ({}) against {} with tolerance {tolerance_pct}%",
        current.label,
        current
            .meta
            .as_ref()
            .map_or("no fingerprint".to_string(), |m| m.host.summary()),
        path.display()
    );
    match &outcome {
        GateOutcome::NoBaseline { reason } => {
            eprintln!("PASS (no comparable baseline): {reason}");
            eprintln!(
                "this run's entry becomes the baseline for the next same-host, \
                 same-thread-count run"
            );
            Ok(())
        }
        GateOutcome::Compared {
            baseline_label,
            rows,
            unmatched,
        } => {
            eprintln!(
                "baseline: '{}' (most recent same-host, same-threads, same-smoke entry)",
                baseline_label
            );
            eprintln!(
                "  {:<28} {:>12} {:>12} {:>8}",
                "component", "baseline ms", "current ms", "delta"
            );
            for row in rows {
                eprintln!(
                    "  {:<28} {:>12.1} {:>12.1} {:>+7.1}%{}",
                    row.name,
                    row.baseline_ms,
                    row.current_ms,
                    row.delta_pct(),
                    if row.regressed { "  REGRESSED" } else { "" }
                );
            }
            for name in unmatched {
                eprintln!("  {name:<28} {:>12} {:>12}", "-", "-");
            }
            if outcome.failed() {
                let worst = rows
                    .iter()
                    .filter(|r| r.regressed)
                    .map(|r| format!("{} {:+.1}%", r.name, r.delta_pct()))
                    .collect::<Vec<_>>()
                    .join(", ");
                Err(format!(
                    "wall-clock regression beyond {tolerance_pct}% vs baseline \
                     '{baseline_label}': {worst}"
                ))
            } else {
                eprintln!("PASS: no component beyond {tolerance_pct}% of baseline");
                Ok(())
            }
        }
    }
}
