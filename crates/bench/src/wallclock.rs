//! Wall-clock benchmark of the simulator itself (`atrapos wallclock`).
//!
//! Times a fixed scenario bundle — the adaptive TATP figure timelines
//! (Figures 10–13) plus TATP and TPC-C design sweeps on the paper's
//! 4-socket machine across all four system designs — and records the
//! result in `reports/BENCH_wallclock.json`.  Successive runs with
//! different labels append to the same file, so the repo accumulates a
//! wall-clock trajectory (e.g. a `pre-refactor` and a `post-refactor`
//! entry per optimization PR) and the speedup between the first and the
//! last run is computed automatically.
//!
//! The ~30 components of the bundle are independent deterministic
//! simulations, so they run as one job list on the engine's parallel
//! experiment lab (`--threads N`, default: all available cores).  The
//! bundle is fixed (no `ATRAPOS_PAPER` dependence) so that entries
//! written at different times stay comparable.  `total_committed` is the
//! total number of simulated transactions the bundle commits; it must be
//! identical across runs of the same source revision, across
//! behaviour-preserving optimizations, *and across thread counts* (same
//! seed ⇒ same simulated work), so it doubles as a cheap cross-run
//! determinism check.

use crate::figures::{fig10_scenario, fig11_scenario, fig12_scenario, fig13_scenario, figure_job};
use crate::harness::{machine, measurement_config, Scale};
use crate::report::report_dir;
use atrapos_engine::sweep::{default_threads, run_sweep, SweepJob};
use atrapos_engine::{DesignSpec, Workload};
use atrapos_workloads::{Tatp, TatpConfig, TatpTxn, Tpcc, TpccConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One timed component of the bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ComponentTiming {
    /// Component name (e.g. `fig10/atrapos`, `tpcc/Centralized`).
    name: String,
    /// Wall-clock milliseconds spent simulating this component, excluding
    /// design build / data population (measured on its worker thread; with
    /// more jobs than cores the per-component times overlap and their sum
    /// exceeds `total_ms`).
    wall_ms: f64,
    /// Transactions committed inside the simulation.
    committed: u64,
}

/// One labelled run of the whole bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WallclockRun {
    /// Run label (`pre-refactor`, `post-refactor`, `smoke`, …).
    label: String,
    /// Seconds since the Unix epoch when the run finished.
    unix_secs: u64,
    /// Whether this was the reduced CI smoke bundle.
    smoke: bool,
    /// OS threads the bundle ran on (`null` in entries recorded before the
    /// parallel lab existed, which were serial).
    threads: Option<usize>,
    /// Per-component timings.
    components: Vec<ComponentTiming>,
    /// Total wall-clock milliseconds over all components.
    total_ms: f64,
    /// Total committed transactions over all components (cross-run
    /// determinism check: identical for behaviour-preserving changes and
    /// for every `--threads` value).
    total_committed: u64,
}

/// The whole report file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WallclockReport {
    /// Schema tag.
    schema: String,
    /// Accumulated runs, oldest first.
    runs: Vec<WallclockRun>,
    /// `first.total_ms / last.total_ms` over full (non-smoke) runs —
    /// > 1.0 means the latest run is faster than the baseline.
    speedup_vs_first: Option<f64>,
}

/// Fixed bundle scale (matches `Scale::quick` where relevant; pinned here
/// so the bundle cannot drift with harness defaults).
fn bundle_scale(smoke: bool) -> Scale {
    let mut s = Scale::quick();
    if smoke {
        s.tatp_subscribers /= 10;
        s.tpcc_warehouses = 4;
        s.measure_secs /= 10.0;
        s.phase_secs /= 10.0;
    }
    s
}

/// The four designs of the sweep components.
fn sweep_designs() -> Vec<DesignSpec> {
    vec![
        DesignSpec::Centralized,
        DesignSpec::coarse_shared_nothing(),
        DesignSpec::Plp,
        DesignSpec::atrapos(),
    ]
}

/// Design-sweep jobs: `workload` against each of the four designs on the
/// 4-socket, 10-cores-per-socket machine.
fn sweep_jobs(
    workload_name: &str,
    make_workload: &dyn Fn() -> Box<dyn Workload>,
    secs: f64,
    out: &mut Vec<SweepJob>,
) {
    for spec in sweep_designs() {
        out.push(SweepJob::measurement(
            format!("{workload_name}/{}", spec.label()),
            machine(4, 10),
            spec,
            make_workload(),
            secs,
            measurement_config(secs),
        ));
    }
}

/// Every component of the bundle as one lab job list, in the fixed
/// historical order (entry comparability depends on it).
fn bundle_jobs(scale: &Scale) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    // The four adaptive-figure timelines, under both variants where the
    // figure compares them.
    for (name, adaptive, initial, scenario) in [
        (
            "fig10/static",
            false,
            TatpTxn::UpdateSubscriberData,
            fig10_scenario(scale),
        ),
        (
            "fig10/atrapos",
            true,
            TatpTxn::UpdateSubscriberData,
            fig10_scenario(scale),
        ),
        (
            "fig11/static",
            false,
            TatpTxn::GetSubscriberData,
            fig11_scenario(scale),
        ),
        (
            "fig11/atrapos",
            true,
            TatpTxn::GetSubscriberData,
            fig11_scenario(scale),
        ),
        (
            "fig12/static",
            false,
            TatpTxn::GetSubscriberData,
            fig12_scenario(scale),
        ),
        (
            "fig12/atrapos",
            true,
            TatpTxn::GetSubscriberData,
            fig12_scenario(scale),
        ),
        (
            "fig13/atrapos",
            true,
            TatpTxn::GetNewDestination,
            fig13_scenario(scale),
        ),
    ] {
        jobs.push(figure_job(name, scale, adaptive, initial, &scenario));
    }
    // Design sweeps on the 4-socket, 10-cores-per-socket machine.
    let tatp_subs = scale.tatp_subscribers;
    sweep_jobs(
        "tatp",
        &|| Box::new(Tatp::new(TatpConfig::scaled(tatp_subs))),
        scale.measure_secs,
        &mut jobs,
    );
    let warehouses = scale.tpcc_warehouses;
    sweep_jobs(
        "tpcc",
        &|| Box::new(Tpcc::new(TpccConfig::scaled(warehouses))),
        scale.measure_secs,
        &mut jobs,
    );
    jobs
}

fn run_bundle(scale: &Scale, threads: usize) -> Vec<ComponentTiming> {
    run_sweep(bundle_jobs(scale), threads)
        .into_iter()
        .map(|r| {
            let outcome = r
                .outcome
                .unwrap_or_else(|e| panic!("bundle component '{}' failed: {e}", r.name));
            ComponentTiming {
                name: r.name,
                wall_ms: r.wall_ms,
                committed: outcome.total_committed(),
            }
        })
        .collect()
}

/// Run the wallclock bundle with the given CLI arguments (`--label L`,
/// `--threads N`, `--smoke`) and append the entry to
/// `reports/BENCH_wallclock.json`.
pub fn run(args: &[String]) -> Result<(), String> {
    let smoke = args.iter().any(|a| a == "--smoke");
    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| if smoke { "smoke".into() } else { "run".into() });
    let threads = match args.iter().position(|a| a == "--threads") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => return Err("--threads needs a positive integer".to_string()),
        },
        None => default_threads(),
    };

    let scale = bundle_scale(smoke);
    eprintln!(
        "running wallclock bundle '{label}' on {threads} thread{}{}",
        if threads == 1 { "" } else { "s" },
        if smoke { " (smoke)" } else { "" }
    );
    let total_start = Instant::now();
    let components = run_bundle(&scale, threads);
    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
    let total_committed = components.iter().map(|c| c.committed).sum();

    for c in &components {
        eprintln!(
            "  {:<28} {:>9.1} ms  {:>9} committed",
            c.name, c.wall_ms, c.committed
        );
    }
    eprintln!(
        "  {:<28} {:>9.1} ms  {:>9} committed",
        "TOTAL", total_ms, total_committed
    );

    let run = WallclockRun {
        label,
        unix_secs: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        smoke,
        threads: Some(threads),
        components,
        total_ms,
        total_committed,
    };

    let dir = report_dir();
    let path = dir.join("BENCH_wallclock.json");
    let mut report = match std::fs::read_to_string(&path) {
        Ok(text) => match serde::json::from_str::<WallclockReport>(&text) {
            Ok(report) => report,
            Err(e) => {
                // Never silently wipe an accumulated trajectory: an
                // unparseable file is a bug or a merge accident, and the
                // baseline entries in it are irreplaceable.
                return Err(format!(
                    "existing {} is unreadable: {e}\nfix or remove the file, then re-run",
                    path.display()
                ));
            }
        },
        Err(_) => WallclockReport {
            schema: "atrapos-wallclock-v1".to_string(),
            runs: Vec::new(),
            speedup_vs_first: None,
        },
    };
    report.runs.push(run);
    let full: Vec<&WallclockRun> = report.runs.iter().filter(|r| !r.smoke).collect();
    report.speedup_vs_first = match (full.first(), full.last()) {
        (Some(first), Some(last)) if full.len() >= 2 && last.total_ms > 0.0 => {
            Some(first.total_ms / last.total_ms)
        }
        _ => None,
    };
    if let Some(s) = report.speedup_vs_first {
        eprintln!("  speedup vs first full run: {s:.2}x");
    }
    if std::fs::create_dir_all(&dir).is_ok() {
        std::fs::write(&path, serde::json::to_string_pretty(&report))
            .unwrap_or_else(|e| eprintln!("cannot write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
