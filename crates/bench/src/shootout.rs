//! Ad-hoc design sweeps (`atrapos sweep`): compare the five system designs
//! on a chosen workload and machine size, through the parallel experiment
//! lab.
//!
//! This is the generalization of the old `design_shootout` example: the
//! (socket count × design) measurements are independent jobs, fan out over
//! the lab, and come back in submission order as one [`FigureResult`]
//! table per socket count.
//!
//! With `--arrival <tps>` the sweep serves the workload *open loop* —
//! Poisson arrivals through a bounded admission queue (`--bound`) — and
//! the table switches to the serving metrics: goodput, p99 latency, and
//! rejection rate.

use crate::harness::{machine, measure_jobs, measurement_config, measurement_job, run_meta, Scale};
use crate::report::{fmt, FigureResult};
use atrapos_core::KeyDistribution;
use atrapos_engine::scenario::{Scenario, ScenarioEvent};
use atrapos_engine::sweep::SweepJob;
use atrapos_engine::{DesignSpec, Workload};
use atrapos_workloads::{ReadOneRow, Tatp, TatpConfig, Tpcc, TpccConfig, Ycsb, YcsbConfig};

/// The workloads `atrapos sweep` can run.
pub const SWEEP_WORKLOADS: &[&str] = &["micro", "tatp", "tpcc", "ycsb"];

/// The five designs of the shootout, in presentation order.
pub fn shootout_designs() -> Vec<DesignSpec> {
    vec![
        DesignSpec::extreme_shared_nothing(false),
        DesignSpec::coarse_shared_nothing(),
        DesignSpec::Centralized,
        DesignSpec::Plp,
        DesignSpec::atrapos(),
    ]
}

/// Build one instance of a named sweep workload, sized for `scale` and the
/// given core count.  `spec:<file.json>` loads a declarative
/// [`WorkloadSpec`](atrapos_workloads::WorkloadSpec) instead of a
/// hand-rolled module.
fn build_workload(
    name: &str,
    scale: &Scale,
    total_cores: usize,
) -> Result<Box<dyn Workload>, String> {
    if let Some(path) = name.strip_prefix("spec:") {
        let spec = crate::figures::load_spec(std::path::Path::new(path))?;
        return spec
            .compile()
            .map(|w| Box::new(w) as Box<dyn Workload>)
            .map_err(|e| format!("{path}: {e}"));
    }
    match name {
        "micro" => Ok(Box::new(ReadOneRow::partitionable(
            scale.micro_rows,
            total_cores,
            1,
        ))),
        "tatp" => Ok(Box::new(Tatp::new(TatpConfig::scaled(
            scale.tatp_subscribers,
        )))),
        "tpcc" => Ok(Box::new(Tpcc::new(TpccConfig::scaled(
            scale.tpcc_warehouses,
        )))),
        "ycsb" => Ok(Box::new(Ycsb::new(
            YcsbConfig::workload_a(scale.ycsb_records).with_distribution(KeyDistribution::Uniform),
        ))),
        other => Err(format!(
            "unknown workload '{other}' (known: {}, or spec:<file.json>)",
            SWEEP_WORKLOADS.join(", ")
        )),
    }
}

/// Sweep every design over `workload_name` at each socket count, returning
/// one result table per socket count.  `open_loop` switches every job to
/// open-loop serving at `(rate_tps, admission bound)` and the tables to
/// the serving metrics.  Unknown workload names are an error (the caller
/// lists [`SWEEP_WORKLOADS`]).
pub fn design_sweep(
    workload_name: &str,
    scale: &Scale,
    socket_counts: &[usize],
    open_loop: Option<(f64, u64)>,
) -> Result<Vec<FigureResult>, String> {
    let designs = shootout_designs();
    let mut jobs = Vec::new();
    for &sockets in socket_counts {
        for spec in &designs {
            let workload = build_workload(workload_name, scale, sockets * scale.cores_per_socket)?;
            let name = format!("{sockets}-socket/{}", spec.label());
            jobs.push(match open_loop {
                Some((rate_tps, bound)) => SweepJob {
                    name,
                    machine: machine(sockets, scale.cores_per_socket),
                    design: spec.clone(),
                    workload,
                    scenario: Scenario::new("design-sweep-serving", scale.measure_secs)
                        .starting_as("serve")
                        .at_unlabelled(0.0, ScenarioEvent::SetAdmissionBound { bound })
                        .at_unlabelled(0.0, ScenarioEvent::SetArrivalRate { rate_tps }),
                    config: measurement_config(scale.measure_secs),
                },
                None => measurement_job(
                    name,
                    sockets,
                    scale.cores_per_socket,
                    spec.clone(),
                    workload,
                    scale.measure_secs,
                ),
            });
        }
    }
    let results = measure_jobs(jobs);
    Ok(socket_counts
        .iter()
        .zip(results.chunks(designs.len()))
        .map(|(&sockets, chunk)| {
            let title = format!(
                "{workload_name} on {sockets} socket(s) × {} cores",
                scale.cores_per_socket
            );
            let mut fig = match open_loop {
                Some((rate_tps, bound)) => {
                    let mut fig = FigureResult::new(
                        format!("sweep-{workload_name}-{sockets}s"),
                        title,
                        vec!["design", "goodput (KTPS)", "p99 (µs)", "rejected %"],
                    );
                    fig.note(format!(
                        "open loop: Poisson arrivals at {rate_tps} TPS through a \
                         {bound}-slot admission queue; p99 includes queueing delay"
                    ));
                    for (spec, stats) in designs.iter().zip(chunk) {
                        let rejected_pct = if stats.offered == 0 {
                            0.0
                        } else {
                            100.0 * stats.rejected as f64 / stats.offered as f64
                        };
                        fig.push_row(vec![
                            spec.label().to_string(),
                            fmt(stats.throughput_tps / 1e3),
                            fmt(stats.p99_latency_us),
                            fmt(rejected_pct),
                        ]);
                    }
                    fig
                }
                None => {
                    let mut fig = FigureResult::new(
                        format!("sweep-{workload_name}-{sockets}s"),
                        title,
                        vec!["design", "KTPS", "IPC", "avg latency (µs)"],
                    );
                    for (spec, stats) in designs.iter().zip(chunk) {
                        fig.push_row(vec![
                            spec.label().to_string(),
                            fmt(stats.throughput_tps / 1e3),
                            fmt(stats.ipc),
                            fmt(stats.avg_latency_us),
                        ]);
                    }
                    fig
                }
            };
            fig.set_meta(run_meta(sockets, scale.cores_per_socket));
            fig
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_table_per_socket_count() {
        let mut scale = Scale::quick();
        scale.micro_rows = 4_000;
        scale.measure_secs = 0.002;
        scale.cores_per_socket = 2;
        let figs = design_sweep("micro", &scale, &[1, 2], None).unwrap();
        assert_eq!(figs.len(), 2);
        for fig in &figs {
            assert_eq!(fig.rows.len(), shootout_designs().len());
            assert!(fig.meta.is_some());
        }
    }

    #[test]
    fn open_loop_sweep_reports_serving_metrics() {
        let mut scale = Scale::quick();
        scale.ycsb_records = 4_000;
        scale.measure_secs = 0.002;
        scale.cores_per_socket = 2;
        let figs = design_sweep("ycsb", &scale, &[1], Some((50_000.0, 64))).unwrap();
        assert_eq!(figs.len(), 1);
        let fig = &figs[0];
        assert_eq!(
            fig.header,
            vec!["design", "goodput (KTPS)", "p99 (µs)", "rejected %"]
        );
        assert_eq!(fig.rows.len(), shootout_designs().len());
        // At a modest offered rate every design serves something, and the
        // rejection column stays a percentage.
        for r in 0..fig.rows.len() {
            assert!(fig.num(r, 1).unwrap() > 0.0);
            let rej = fig.num(r, 3).unwrap();
            assert!((0.0..=100.0).contains(&rej));
        }
    }

    #[test]
    fn unknown_workloads_are_rejected_with_the_known_list() {
        let err = design_sweep("nope", &Scale::quick(), &[1], None).unwrap_err();
        assert!(err.contains("micro, tatp, tpcc, ycsb"));
    }
}
