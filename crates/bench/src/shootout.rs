//! Ad-hoc design sweeps (`atrapos sweep`): compare the five system designs
//! on a chosen workload and machine size, through the parallel experiment
//! lab.
//!
//! This is the generalization of the old `design_shootout` example: the
//! (socket count × design) measurements are independent jobs, fan out over
//! the lab, and come back in submission order as one [`FigureResult`]
//! table per socket count.

use crate::harness::{measure_jobs, measurement_job, run_meta, Scale};
use crate::report::{fmt, FigureResult};
use atrapos_engine::{DesignSpec, Workload};
use atrapos_workloads::{ReadOneRow, Tatp, TatpConfig, Tpcc, TpccConfig};

/// The workloads `atrapos sweep` can run.
pub const SWEEP_WORKLOADS: &[&str] = &["micro", "tatp", "tpcc"];

/// The five designs of the shootout, in presentation order.
pub fn shootout_designs() -> Vec<DesignSpec> {
    vec![
        DesignSpec::extreme_shared_nothing(false),
        DesignSpec::coarse_shared_nothing(),
        DesignSpec::Centralized,
        DesignSpec::Plp,
        DesignSpec::atrapos(),
    ]
}

/// Build one instance of a named sweep workload, sized for `scale` and the
/// given core count.
fn build_workload(name: &str, scale: &Scale, total_cores: usize) -> Option<Box<dyn Workload>> {
    match name {
        "micro" => Some(Box::new(ReadOneRow::partitionable(
            scale.micro_rows,
            total_cores,
            1,
        ))),
        "tatp" => Some(Box::new(Tatp::new(TatpConfig::scaled(
            scale.tatp_subscribers,
        )))),
        "tpcc" => Some(Box::new(Tpcc::new(TpccConfig::scaled(
            scale.tpcc_warehouses,
        )))),
        _ => None,
    }
}

/// Sweep every design over `workload_name` at each socket count, returning
/// one result table per socket count.  Unknown workload names are an
/// error (the caller lists [`SWEEP_WORKLOADS`]).
pub fn design_sweep(
    workload_name: &str,
    scale: &Scale,
    socket_counts: &[usize],
) -> Result<Vec<FigureResult>, String> {
    let designs = shootout_designs();
    let mut jobs = Vec::new();
    for &sockets in socket_counts {
        for spec in &designs {
            let workload = build_workload(workload_name, scale, sockets * scale.cores_per_socket)
                .ok_or_else(|| {
                format!(
                    "unknown workload '{workload_name}' (known: {})",
                    SWEEP_WORKLOADS.join(", ")
                )
            })?;
            jobs.push(measurement_job(
                format!("{sockets}-socket/{}", spec.label()),
                sockets,
                scale.cores_per_socket,
                spec.clone(),
                workload,
                scale.measure_secs,
            ));
        }
    }
    let results = measure_jobs(jobs);
    Ok(socket_counts
        .iter()
        .zip(results.chunks(designs.len()))
        .map(|(&sockets, chunk)| {
            let mut fig = FigureResult::new(
                format!("sweep-{workload_name}-{sockets}s"),
                format!(
                    "{workload_name} on {sockets} socket(s) × {} cores",
                    scale.cores_per_socket
                ),
                vec!["design", "KTPS", "IPC", "avg latency (µs)"],
            );
            for (spec, stats) in designs.iter().zip(chunk) {
                fig.push_row(vec![
                    spec.label().to_string(),
                    fmt(stats.throughput_tps / 1e3),
                    fmt(stats.ipc),
                    fmt(stats.avg_latency_us),
                ]);
            }
            fig.set_meta(run_meta(sockets, scale.cores_per_socket));
            fig
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_table_per_socket_count() {
        let mut scale = Scale::quick();
        scale.micro_rows = 4_000;
        scale.measure_secs = 0.002;
        scale.cores_per_socket = 2;
        let figs = design_sweep("micro", &scale, &[1, 2]).unwrap();
        assert_eq!(figs.len(), 2);
        for fig in &figs {
            assert_eq!(fig.rows.len(), shootout_designs().len());
            assert!(fig.meta.is_some());
        }
    }

    #[test]
    fn unknown_workloads_are_rejected_with_the_known_list() {
        let err = design_sweep("nope", &Scale::quick(), &[1]).unwrap_err();
        assert!(err.contains("micro, tatp, tpcc"));
    }
}
