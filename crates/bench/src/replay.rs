//! Replay-file experiments: a complete experiment description — machine,
//! design spec, workload parameters, and event timeline — stored as JSON.
//!
//! This is the "scenarios are data" endpoint: `atrapos replay file.json`
//! loads a [`ReplayFile`], runs it, and prints per-segment statistics.  A
//! canonical file ships at `examples/scenarios/adaptive_tatp.json`; the
//! determinism regression test replays it twice and requires byte-identical
//! serialized outcomes.

use atrapos_engine::scenario::{Scenario, ScenarioError, ScenarioOutcome};
use atrapos_engine::{DesignSpec, ExecutorConfig, VirtualExecutor};
use atrapos_numa::{CostModel, Machine, Topology};
use atrapos_workloads::{Tatp, TatpConfig, TatpTxn};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The default replay file, shipped with the repository.
pub const DEFAULT_REPLAY_PATH: &str = "examples/scenarios/adaptive_tatp.json";

/// A complete, self-contained experiment description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayFile {
    /// Simulated machine: sockets × cores per socket.
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// The design to run (serializable spec, no code).
    pub design: DesignSpec,
    /// TATP dataset size.
    pub tatp_subscribers: i64,
    /// Transaction type the workload starts on.
    pub initial_txn: String,
    /// Workload-generator seed.
    pub seed: u64,
    /// Default monitoring interval in virtual seconds.
    pub interval_secs: f64,
    /// The event timeline.
    pub scenario: Scenario,
}

impl ReplayFile {
    /// Load and validate a replay file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read replay file '{}': {e}", path.display()))?;
        let replay: Self = serde::json::from_str(&text)
            .map_err(|e| format!("cannot parse replay file '{}': {e}", path.display()))?;
        replay
            .scenario
            .validate()
            .map_err(|e| format!("invalid scenario in '{}': {e}", path.display()))?;
        Ok(replay)
    }

    /// Build the executor this file describes (machine, populated design,
    /// seeded workload).
    pub fn build_executor(&self) -> Result<VirtualExecutor, String> {
        let machine = Machine::new(
            Topology::multisocket(self.sockets, self.cores_per_socket),
            CostModel::westmere(),
        );
        let mut workload = Tatp::new(TatpConfig::scaled(self.tatp_subscribers));
        let initial = TatpTxn::from_label(&self.initial_txn)
            .ok_or_else(|| format!("unknown initial transaction '{}'", self.initial_txn))?;
        workload.set_single(initial);
        let design = self.design.build(&machine, &workload);
        Ok(VirtualExecutor::new(
            machine,
            design,
            Box::new(workload),
            ExecutorConfig {
                seed: self.seed,
                default_interval_secs: self.interval_secs,
                time_series_bucket_secs: self.interval_secs,
            },
        ))
    }

    /// Run the experiment to completion.
    pub fn run(&self) -> Result<ScenarioOutcome, String> {
        self.build_executor()?
            .run_scenario(&self.scenario)
            .map_err(|e: ScenarioError| e.to_string())
    }
}

/// The canonical sample experiment (the contents of
/// [`DEFAULT_REPLAY_PATH`]): the `adaptive_tatp` timeline on a 4×4 machine.
pub fn sample() -> ReplayFile {
    use atrapos_core::{AdaptiveInterval, ControllerConfig};
    use atrapos_engine::scenario::ScenarioEvent;
    use atrapos_engine::AtraposConfig;
    ReplayFile {
        sockets: 4,
        cores_per_socket: 4,
        design: DesignSpec::atrapos_with(AtraposConfig {
            controller: ControllerConfig {
                interval: AdaptiveInterval::new(0.05, 0.4, 0.10),
                ..ControllerConfig::default()
            },
            ..AtraposConfig::default()
        }),
        tatp_subscribers: 20_000,
        initial_txn: "UpdSubData".to_string(),
        seed: 7,
        interval_secs: 0.05,
        scenario: Scenario::new("adaptive-tatp-replay", 0.75)
            .starting_as("UpdSubData")
            .at(
                0.25,
                "GetNewDest",
                ScenarioEvent::SetWorkloadPhase {
                    txn: "GetNewDest".to_string(),
                },
            )
            .at(0.5, "TATP-Mix", ScenarioEvent::SetMix),
    }
}

/// Print a replay outcome's per-segment statistics to stdout.
pub fn print_outcome(replay: &ReplayFile, outcome: &ScenarioOutcome) {
    println!(
        "replaying '{}' ({} events over {:.2} virtual s) against {}",
        replay.scenario.name,
        replay.scenario.events.len(),
        replay.scenario.duration_secs,
        replay.design.label(),
    );
    for segment in &outcome.segments {
        println!(
            "  segment {:<12} t={:>5.2}s  {:>9.0} TPS  latency {:>6.1} µs  repartitionings {}",
            segment.label,
            segment.start_secs,
            segment.stats.throughput_tps,
            segment.stats.avg_latency_us,
            segment.stats.repartitions,
        );
    }
    println!(
        "total committed {}  design stats {:?}",
        outcome.total_committed(),
        outcome.design_stats
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_round_trips_and_runs() {
        let mut replay = sample();
        // Shrink for test budgets; structure stays the sample's.
        replay.tatp_subscribers = 2_000;
        replay.interval_secs /= 5.0;
        replay.scenario.duration_secs /= 5.0;
        for e in &mut replay.scenario.events {
            e.at_secs /= 5.0;
        }
        let json = serde::json::to_string_pretty(&replay);
        let back: ReplayFile = serde::json::from_str(&json).unwrap();
        assert_eq!(back.scenario, replay.scenario);
        let outcome = replay.run().expect("sample replay runs");
        assert!(outcome.total_committed() > 0);
        assert_eq!(outcome.segments.len(), 3);
    }

    #[test]
    fn unknown_initial_txn_is_a_load_error() {
        let mut replay = sample();
        replay.initial_txn = "NoSuchTxn".to_string();
        assert!(replay.run().unwrap_err().contains("NoSuchTxn"));
    }
}
