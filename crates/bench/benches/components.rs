//! Criterion microbenchmarks for the performance-critical components of the
//! library: the B+-tree, the lock manager, the cost model, the partitioning
//! search, and end-to-end transaction execution of two system designs.
//!
//! Set `ATRAPOS_BENCH_SMOKE=1` to shrink the measurement budget to a few
//! milliseconds per benchmark (CI runs this to keep the benches compiling
//! and executing without paying for stable numbers).

use atrapos_core::{
    choose_scheme, resource_utilization, sync_overhead, KeyDomain, PartitioningScheme,
    SearchConfig, SubPartitionId, WorkloadStats,
};
use atrapos_engine::workload::testing::TinyWorkload;
use atrapos_engine::{AtraposConfig, AtraposDesign, CentralizedDesign, SystemDesign, Workload};
use atrapos_numa::{CoreId, CostModel, Machine, Topology};
use atrapos_storage::{
    BTree, Key, LockId, LockManager, LockMode, Record, TableId, Txn, TxnId, Value,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn rec(v: i64) -> Record {
    Record::new(vec![Value::Int(v), Value::Int(v * 2)])
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    let tree = BTree::bulk_load((0..100_000).map(|i| (Key::int(i), rec(i))).collect());
    let mut rng = SmallRng::seed_from_u64(1);
    group.bench_function("get/100k", |b| {
        b.iter(|| {
            let k = Key::int(rng.gen_range(0..100_000));
            std::hint::black_box(tree.get(&k));
        })
    });
    group.bench_function("insert/10k", |b| {
        b.iter_batched(
            BTree::new,
            |mut t| {
                for i in 0..10_000 {
                    t.insert(Key::int(i), rec(i));
                }
                t
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("split_off/100k", |b| {
        b.iter_batched(
            || tree.clone(),
            |mut t| t.split_off(&Key::int(50_000)),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_lock_manager(c: &mut Criterion) {
    let topo = Topology::multisocket(4, 2);
    let cost = CostModel::westmere();
    c.bench_function("lock_manager/acquire_release", |b| {
        let mut lm = LockManager::centralized(256, 4);
        let mut i = 0u64;
        b.iter(|| {
            let mut ctx = atrapos_numa::SimCtx::new(&topo, &cost, CoreId(0), i);
            let mut txn = Txn::begin(TxnId(i));
            lm.acquire(
                &mut ctx,
                &mut txn,
                LockId::Record(TableId(0), Key::int((i % 1000) as i64)),
                LockMode::X,
            );
            lm.release_all(&mut ctx, &mut txn);
            i += 10_000;
        })
    });
}

fn bench_cost_model_and_search(c: &mut Criterion) {
    let topo = Topology::westmere_ex_8x10();
    let scheme = PartitioningScheme::naive(
        &[
            (TableId(0), KeyDomain::new(0, 1_000_000)),
            (TableId(1), KeyDomain::new(0, 1_000_000)),
        ],
        &topo,
        10,
    );
    let mut stats = WorkloadStats::new();
    let mut rng = SmallRng::seed_from_u64(3);
    for t in 0..2u32 {
        for sub in 0..800 {
            stats.record_action(
                SubPartitionId::new(TableId(t), sub),
                rng.gen_range(1.0..50.0),
            );
        }
    }
    for sub in (0..800).step_by(2) {
        stats.record_sync(
            SubPartitionId::new(TableId(0), sub),
            SubPartitionId::new(TableId(1), sub),
            128,
        );
    }
    c.bench_function("cost_model/evaluate", |b| {
        b.iter(|| {
            std::hint::black_box(resource_utilization(&scheme, &stats, &topo));
            std::hint::black_box(sync_overhead(&scheme, &stats, &topo));
        })
    });
    c.bench_function("search/choose_scheme_80_cores", |b| {
        b.iter(|| {
            std::hint::black_box(choose_scheme(
                &scheme,
                &stats,
                &topo,
                &SearchConfig {
                    max_iterations: 50,
                    ..SearchConfig::default()
                },
            ))
        })
    });
}

fn bench_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_execution");
    {
        let mut m = Machine::new(Topology::multisocket(4, 2), CostModel::westmere());
        let mut w = TinyWorkload { rows: 10_000 };
        let mut design = CentralizedDesign::new(&m, &w);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut now = 0;
        group.bench_function("centralized_read", |b| {
            b.iter(|| {
                let spec = w.next_transaction(&mut rng, CoreId(0));
                let out = design.execute(&mut m, &spec, CoreId(0), now);
                now = out.end;
                std::hint::black_box(out)
            })
        });
    }
    {
        let mut m = Machine::new(Topology::multisocket(4, 2), CostModel::westmere());
        let mut w = TinyWorkload { rows: 10_000 };
        let mut design = AtraposDesign::new(&m, &w, AtraposConfig::default());
        let mut rng = SmallRng::seed_from_u64(5);
        let mut now = 0;
        group.bench_function("atrapos_read", |b| {
            b.iter(|| {
                let spec = w.next_transaction(&mut rng, CoreId(0));
                let out = design.execute(&mut m, &spec, CoreId(0), now);
                now = out.end;
                std::hint::black_box(out)
            })
        });
    }
    group.finish();
}

/// Full measurement budget by default, a few milliseconds per benchmark
/// under `ATRAPOS_BENCH_SMOKE`.
fn config() -> Criterion {
    let smoke = std::env::var("ATRAPOS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let (samples, warm_ms, measure_ms) = if smoke { (5, 5, 20) } else { (20, 300, 2000) };
    Criterion::default()
        .sample_size(samples)
        .warm_up_time(std::time::Duration::from_millis(warm_ms))
        .measurement_time(std::time::Duration::from_millis(measure_ms))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_btree,
        bench_lock_manager,
        bench_cost_model_and_search,
        bench_designs
}
criterion_main!(benches);
