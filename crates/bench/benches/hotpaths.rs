//! Criterion microbenchmarks for the simulator's serial hot paths — the
//! loops the `atrapos wallclock` bundle spends its time in: key-sampler
//! draws, latency-histogram recording and quantile queries, timeline
//! booking, arrival-process draws, and the closed-loop executor's inner
//! loop.
//!
//! Set `ATRAPOS_BENCH_SMOKE=1` to shrink the measurement budget to a few
//! milliseconds per benchmark (CI runs this to keep the benches compiling
//! and executing without paying for stable numbers).

use atrapos_bench::harness;
use atrapos_core::{KeyDistribution, LatencyHistogram};
use atrapos_engine::{ArrivalProcess, DesignSpec};
use atrapos_numa::contention::Timeline;
use atrapos_workloads::{Ycsb, YcsbConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Shared config: full measurement budget by default, a few milliseconds
/// per benchmark under `ATRAPOS_BENCH_SMOKE`.
fn config() -> Criterion {
    let smoke = std::env::var("ATRAPOS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let (samples, warm_ms, measure_ms) = if smoke { (5, 5, 20) } else { (20, 300, 2000) };
    Criterion::default()
        .sample_size(samples)
        .warm_up_time(Duration::from_millis(warm_ms))
        .measurement_time(Duration::from_millis(measure_ms))
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler");
    let cases = [
        ("uniform", KeyDistribution::Uniform),
        (
            "hotspot",
            KeyDistribution::Hotspot {
                data_fraction: 0.2,
                access_fraction: 0.5,
            },
        ),
        // The wallclock bundle's YCSB components draw from exactly this
        // distribution — the squeeze target of the first-level CDF index.
        (
            "zipfian_0.99/100k",
            KeyDistribution::Zipfian { theta: 0.99 },
        ),
        (
            "drift",
            KeyDistribution::Drift {
                data_fraction: 0.1,
                access_fraction: 0.9,
                period_txns: 10_000,
            },
        ),
    ];
    for (name, dist) in cases {
        let mut sampler = dist.sampler(0, 100_000);
        let mut rng = SmallRng::seed_from_u64(1);
        group.bench_function(name, |b| b.iter(|| sampler.sample(&mut rng)));
    }
    // Worst case for the bucket index: theta = 0 keeps the CDF uniform, so
    // every bucket window still holds ~n/1024 entries to binary-search.
    let mut flat = KeyDistribution::Zipfian { theta: 0.0 }.sampler(0, 100_000);
    let mut rng = SmallRng::seed_from_u64(2);
    group.bench_function("zipfian_0.0/100k", |b| b.iter(|| flat.sample(&mut rng)));
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram");
    let mut hist = LatencyHistogram::new();
    let mut x = 0x9e3779b97f4a7c15u64;
    group.bench_function("record", |b| {
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            hist.record(x % 1_000_000);
        })
    });
    let mut filled = LatencyHistogram::new();
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..100_000 {
        filled.record(rng.gen_range(0..5_000_000u64));
    }
    group.bench_function("quantile/p50_p99_p999", |b| {
        b.iter(|| {
            (
                filled.quantile(0.5),
                filled.quantile(0.99),
                filled.quantile(0.999),
            )
        })
    });
    group.finish();
}

fn bench_timeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeline");
    {
        // The common case: the executor books cache-line accesses in
        // roughly increasing virtual time (hits the append fast path).
        let mut t = Timeline::default();
        let mut at = 0u64;
        group.bench_function("book/sequential", |b| {
            b.iter(|| {
                let granted = t.book(at, 20);
                at = granted + 25;
                granted
            })
        });
    }
    {
        // Out-of-order bookings about one transaction length behind the
        // horizon exercise the interval scan-and-merge path.
        let mut t = Timeline::default();
        let mut base = 10_000u64;
        let mut i = 0u64;
        group.bench_function("book/out_of_order", |b| {
            b.iter(|| {
                let jitter = (i.wrapping_mul(7919)) % 2_000;
                i += 1;
                base += 30;
                t.book(base.saturating_sub(jitter), 20)
            })
        });
    }
    group.finish();
}

fn bench_arrivals(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrival");
    let poisson = ArrivalProcess::Poisson { rate_tps: 10_000.0 };
    let mut rng = SmallRng::seed_from_u64(5);
    let mut t = 0.0f64;
    group.bench_function("poisson_draw", |b| {
        b.iter(|| {
            t = poisson.next_arrival_secs(t, &mut rng);
            t
        })
    });
    group.finish();
}

fn bench_executor(c: &mut Criterion) {
    // The closed-loop executor's inner loop end to end, on the same
    // YCSB-A/Zipfian(0.99) workload the wallclock bundle times: each
    // iteration advances the simulation by half a virtual millisecond.
    let workload = Ycsb::new(YcsbConfig::workload_a(10_000).with_theta(0.99));
    let mut exec = harness::executor(
        harness::machine(2, 2),
        &DesignSpec::Centralized,
        Box::new(workload),
        0.1,
    );
    c.bench_function("executor/closed_loop_ycsb_0.5ms", |b| {
        b.iter(|| exec.run_for(0.0005))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_samplers,
        bench_histogram,
        bench_timeline,
        bench_arrivals,
        bench_executor
}
criterion_main!(benches);
