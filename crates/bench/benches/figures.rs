//! `cargo bench --bench figures` — regenerate every table and figure of the
//! paper's evaluation and print them (this harness does not use Criterion:
//! each experiment is a full workload run whose output *is* the result).

use atrapos_bench::figures::{run_all, run_all_ablations};
use atrapos_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("ATraPos evaluation — regenerating every table and figure");
    println!(
        "scale: {} (set ATRAPOS_PAPER=1 for the paper-sized datasets)\n",
        if std::env::var("ATRAPOS_PAPER")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            "paper"
        } else {
            "quick"
        }
    );
    let start = std::time::Instant::now();
    for fig in run_all(&scale) {
        fig.print();
    }
    println!("-- ablations (not figures of the paper; see DESIGN.md §5a) --\n");
    for fig in run_all_ablations(&scale) {
        fig.print();
    }
    println!(
        "regenerated all experiments in {:.1} s",
        start.elapsed().as_secs_f64()
    );
}
