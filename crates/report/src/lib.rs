//! # atrapos-report
//!
//! Self-documenting reproduction evidence for the ATraPos (ICDE 2014)
//! reproduction: experiment results as serializable data, hand-rolled SVG
//! charts, and pass/warn verdicts against the paper's reference trends.
//!
//! * [`model`] — [`FigureResult`] (one regenerated table/figure, with run
//!   provenance) and [`FiguresFile`], the accumulated store behind
//!   `reports/BENCH_figures.json`.
//! * [`svg`] — a dependency-free deterministic SVG emitter: multi-series
//!   line charts and grouped bar charts.
//! * [`verdict`] — the reference-trend and SLO checks: for each headline
//!   experiment, whether the recorded rows show the trend the paper's
//!   conclusions rest on (or, for the open-loop overload extensions, meet
//!   the stated service-level objective).
//! * [`reproduction`] — the `REPRODUCTION.md` generator gluing the three
//!   together: one section per experiment with a markdown table, a chart,
//!   and a verdict.
//!
//! The whole pipeline is pure and deterministic: the same input JSON
//! produces byte-identical markdown and SVG, so the committed report can be
//! regenerated and diffed in CI.  Simulations happen elsewhere
//! (`atrapos-bench`); this crate only renders recorded results.

#![warn(missing_docs)]

pub mod model;
pub mod reproduction;
pub mod svg;
pub mod verdict;

pub use model::{fmt, FigureResult, FiguresFile, CANONICAL_ORDER, FIGURES_SCHEMA};
pub use reproduction::{chart, generate, Reproduction};
pub use verdict::{assess, Assessment, CheckKind, Verdict};
