//! A tiny hand-rolled SVG chart emitter.
//!
//! The reproduction report needs line charts (the adaptive time series of
//! Figures 10–13) and grouped bar charts (the per-workload comparisons of
//! Figure 8, Table II, and the ablations).  Both are emitted as standalone
//! SVG documents with no external dependencies, fonts aside, and with
//! deterministic output: the same data always produces byte-identical
//! markup (floats are printed with fixed precision, nothing depends on
//! iteration order or the clock).

use std::fmt::Write as _;

/// Canvas width in user units.
const WIDTH: f64 = 720.0;
/// Canvas height in user units.
const HEIGHT: f64 = 405.0;
/// Plot-area margins: top (title), right, bottom (x ticks + label), left
/// (y ticks + label).
const MARGIN: (f64, f64, f64, f64) = (42.0, 18.0, 52.0, 64.0);
/// Series colors, assigned in order.
const PALETTE: &[&str] = &[
    "#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed", "#0891b2",
];

/// One named line of a line chart.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, y) points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

/// Fixed-precision coordinate formatting (two decimals is well below one
/// user unit, and keeps the output stable).
fn c(v: f64) -> String {
    format!("{v:.2}")
}

/// Tick-label formatting: trims trailing zeros so axes read naturally.
fn tick_label(v: f64) -> String {
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

/// A "nice" tick step (1, 2, or 5 times a power of ten) giving at most
/// `max_ticks` intervals over `span`.
fn nice_step(span: f64, max_ticks: usize) -> f64 {
    // NaN and non-positive spans both fall back to a unit step.
    if span.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || max_ticks == 0 {
        return 1.0;
    }
    let raw = span / max_ticks as f64;
    let mag = 10f64.powf(raw.log10().floor());
    for m in [1.0, 2.0, 5.0, 10.0] {
        if mag * m >= raw {
            return mag * m;
        }
    }
    mag * 10.0
}

/// Tick positions covering `[lo, hi]` at multiples of the nice step.
fn ticks(lo: f64, hi: f64, max_ticks: usize) -> Vec<f64> {
    let step = nice_step(hi - lo, max_ticks);
    let first = (lo / step).floor() * step;
    let mut out = Vec::new();
    let mut t = first;
    // A sliver of slack keeps boundary ticks despite float accumulation,
    // without admitting ticks that would land outside the plot area.
    while t <= hi + step * 1e-6 {
        if t >= lo - step * 1e-6 {
            // Snap near-zero accumulation artifacts to exactly zero.
            out.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
        }
        t += step;
    }
    out
}

/// The shared document frame: header, background, title, axis labels.
struct Frame {
    out: String,
    /// Plot-area rectangle (x0, y0, x1, y1) in user units.
    plot: (f64, f64, f64, f64),
}

impl Frame {
    fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        let (top, right, bottom, left) = MARGIN;
        let plot = (left, top, WIDTH - right, HEIGHT - bottom);
        let mut out = String::new();
        let _ = writeln!(
            out,
            r##"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {w} {h}" font-family="Helvetica, Arial, sans-serif">"##,
            w = c(WIDTH),
            h = c(HEIGHT),
        );
        let _ = writeln!(
            out,
            r##"<rect width="{w}" height="{h}" fill="#ffffff"/>"##,
            w = c(WIDTH),
            h = c(HEIGHT),
        );
        let _ = writeln!(
            out,
            r##"<text x="{x}" y="24" text-anchor="middle" font-size="15" fill="#111827">{t}</text>"##,
            x = c(WIDTH / 2.0),
            t = escape(title),
        );
        let _ = writeln!(
            out,
            r##"<text x="{x}" y="{y}" text-anchor="middle" font-size="12" fill="#374151">{t}</text>"##,
            x = c((plot.0 + plot.2) / 2.0),
            y = c(HEIGHT - 10.0),
            t = escape(x_label),
        );
        let _ = writeln!(
            out,
            r##"<text x="14" y="{y}" text-anchor="middle" font-size="12" fill="#374151" transform="rotate(-90 14 {y})">{t}</text>"##,
            y = c((plot.1 + plot.3) / 2.0),
            t = escape(y_label),
        );
        Self { out, plot }
    }

    /// Horizontal gridline + y-axis tick label at data value `v`.
    fn y_tick(&mut self, v: f64, y: f64) {
        let (x0, _, x1, _) = self.plot;
        let _ = writeln!(
            self.out,
            r##"<line x1="{x0}" y1="{y}" x2="{x1}" y2="{y}" stroke="#e5e7eb" stroke-width="1"/>"##,
            x0 = c(x0),
            x1 = c(x1),
            y = c(y),
        );
        let _ = writeln!(
            self.out,
            r##"<text x="{x}" y="{y}" text-anchor="end" font-size="11" fill="#6b7280">{t}</text>"##,
            x = c(x0 - 6.0),
            y = c(y + 4.0),
            t = tick_label(v),
        );
    }

    /// X-axis tick label centred at `x`.
    fn x_tick_label(&mut self, text: &str, x: f64) {
        let (_, _, _, y1) = self.plot;
        let _ = writeln!(
            self.out,
            r##"<text x="{x}" y="{y}" text-anchor="middle" font-size="11" fill="#6b7280">{t}</text>"##,
            x = c(x),
            y = c(y1 + 16.0),
            t = escape(text),
        );
    }

    /// Axis lines along the left and bottom plot edges.
    fn axes(&mut self) {
        let (x0, y0, x1, y1) = self.plot;
        let _ = writeln!(
            self.out,
            r##"<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="#9ca3af" stroke-width="1"/>"##,
            x0 = c(x0),
            y0 = c(y0),
            y1 = c(y1),
        );
        let _ = writeln!(
            self.out,
            r##"<line x1="{x0}" y1="{y1}" x2="{x1}" y2="{y1}" stroke="#9ca3af" stroke-width="1"/>"##,
            x0 = c(x0),
            x1 = c(x1),
            y1 = c(y1),
        );
    }

    /// Color-keyed legend in the top-right corner of the plot area.
    fn legend(&mut self, labels: &[String]) {
        if labels.len() < 2 {
            return;
        }
        let (_, y0, x1, _) = self.plot;
        let longest = labels.iter().map(|l| l.len()).max().unwrap_or(0) as f64;
        let w = 26.0 + longest * 6.6;
        let x = x1 - w - 4.0;
        let mut y = y0 + 6.0;
        let _ = writeln!(
            self.out,
            r##"<rect x="{x}" y="{y}" width="{w}" height="{h}" fill="#ffffff" fill-opacity="0.85" stroke="#e5e7eb"/>"##,
            x = c(x),
            y = c(y),
            w = c(w),
            h = c(labels.len() as f64 * 16.0 + 6.0),
        );
        for (i, label) in labels.iter().enumerate() {
            y += 16.0;
            let color = PALETTE[i % PALETTE.len()];
            let _ = writeln!(
                self.out,
                r##"<rect x="{x}" y="{ry}" width="10" height="10" fill="{color}"/>"##,
                x = c(x + 6.0),
                ry = c(y - 9.0),
            );
            let _ = writeln!(
                self.out,
                r##"<text x="{x}" y="{ty}" font-size="11" fill="#374151">{t}</text>"##,
                x = c(x + 21.0),
                ty = c(y),
                t = escape(label),
            );
        }
    }

    fn finish(mut self) -> String {
        self.out.push_str("</svg>\n");
        self.out
    }
}

/// Escape the XML special characters of a text node.
fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Emit a multi-series line chart as a standalone SVG document.
///
/// The x and y ranges span all series; the y range is zero-based when the
/// data is non-negative (throughput charts read wrongly otherwise).
pub fn line_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let mut frame = Frame::new(title, x_label, y_label);
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    let (x_lo, x_hi) = span(points.iter().map(|p| p.0));
    let (y_lo, y_hi) = span(points.iter().map(|p| p.1));
    let y_lo = if y_lo >= 0.0 { 0.0 } else { y_lo };
    let (x0, y0, x1, y1) = frame.plot;
    let sx = |v: f64| x0 + (v - x_lo) / (x_hi - x_lo).max(1e-12) * (x1 - x0);
    let sy = |v: f64| y1 - (v - y_lo) / (y_hi - y_lo).max(1e-12) * (y1 - y0);

    for t in ticks(y_lo, y_hi, 6) {
        frame.y_tick(t, sy(t));
    }
    frame.axes();
    for t in ticks(x_lo, x_hi, 8) {
        frame.x_tick_label(&tick_label(t), sx(t));
    }
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .map(|(x, y)| format!("{},{}", c(sx(*x)), c(sy(*y))))
            .collect();
        let _ = writeln!(
            frame.out,
            r##"<polyline points="{p}" fill="none" stroke="{color}" stroke-width="2"/>"##,
            p = path.join(" "),
        );
    }
    frame.legend(&series.iter().map(|s| s.label.clone()).collect::<Vec<_>>());
    frame.finish()
}

/// Emit a grouped bar chart as a standalone SVG document.
///
/// `values[g]` holds one bar per series for category `categories[g]`; the
/// y range is zero-based (and extends below zero if any value is
/// negative).
pub fn bar_chart(
    title: &str,
    y_label: &str,
    categories: &[String],
    series_labels: &[String],
    values: &[Vec<f64>],
) -> String {
    let mut frame = Frame::new(title, "", y_label);
    let all: Vec<f64> = values.iter().flatten().copied().collect();
    let (v_lo, v_hi) = span(all.iter().copied());
    let y_lo = v_lo.min(0.0);
    let y_hi = v_hi.max(0.0);
    let (x0, y0, x1, y1) = frame.plot;
    let sy = |v: f64| y1 - (v - y_lo) / (y_hi - y_lo).max(1e-12) * (y1 - y0);

    for t in ticks(y_lo, y_hi, 6) {
        frame.y_tick(t, sy(t));
    }
    frame.axes();

    let n_groups = categories.len().max(1);
    let n_series = series_labels.len().max(1);
    let group_w = (x1 - x0) / n_groups as f64;
    let bar_w = (group_w * 0.72) / n_series as f64;
    for (g, cat) in categories.iter().enumerate() {
        let gx = x0 + g as f64 * group_w;
        frame.x_tick_label(cat, gx + group_w / 2.0);
        for s in 0..n_series {
            let v = values
                .get(g)
                .and_then(|row| row.get(s))
                .copied()
                .unwrap_or(0.0);
            let color = PALETTE[s % PALETTE.len()];
            let (top, bottom) = if v >= 0.0 {
                (sy(v), sy(0.0))
            } else {
                (sy(0.0), sy(v))
            };
            let _ = writeln!(
                frame.out,
                r##"<rect x="{x}" y="{y}" width="{w}" height="{h}" fill="{color}"/>"##,
                x = c(gx + group_w * 0.14 + s as f64 * bar_w),
                y = c(top),
                w = c(bar_w * 0.92),
                h = c((bottom - top).max(0.5)),
            );
        }
    }
    frame.legend(series_labels);
    frame.finish()
}

/// The (min, max) of an iterator, with a degenerate fallback of (0, 1).
fn span(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if lo > hi {
        return (0.0, 1.0);
    }
    if lo == hi {
        // A flat series still needs a nonzero span to scale into.
        return (lo - 0.5, hi + 0.5);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice_steps_are_1_2_5_times_powers_of_ten() {
        assert_eq!(nice_step(10.0, 5), 2.0);
        assert_eq!(nice_step(1.0, 4), 0.5);
        assert_eq!(nice_step(0.03, 6), 0.005);
        assert_eq!(nice_step(700.0, 6), 200.0);
    }

    #[test]
    fn ticks_cover_the_range() {
        let t = ticks(0.0, 0.75, 8);
        assert!(t.first().copied().unwrap_or(1.0) <= 0.0);
        assert!(t.last().copied().unwrap_or(0.0) >= 0.7);
        assert!(t.len() <= 10);
    }

    #[test]
    fn line_chart_is_deterministic_and_well_formed() {
        let series = vec![
            Series {
                label: "Static".into(),
                points: vec![(0.0, 1.0), (0.5, 2.0), (1.0, 1.5)],
            },
            Series {
                label: "ATraPos".into(),
                points: vec![(0.0, 1.2), (0.5, 2.5), (1.0, 3.0)],
            },
        ];
        let a = line_chart("t", "time (s)", "KTPS", &series);
        let b = line_chart("t", "time (s)", "KTPS", &series);
        assert_eq!(a, b);
        assert!(a.starts_with("<svg"));
        assert!(a.trim_end().ends_with("</svg>"));
        assert_eq!(a.matches("<polyline").count(), 2);
        assert!(a.contains("ATraPos"));
    }

    #[test]
    fn bar_chart_draws_one_rect_per_value_plus_legend() {
        let cats = vec!["a".into(), "b".into(), "c".into()];
        let labels = vec!["x".into(), "y".into()];
        let values = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, -1.0]];
        let svg = bar_chart("t", "ratio", &cats, &labels, &values);
        // 1 background + 1 legend box + 6 bars + 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 10);
        assert!(svg.contains("ratio"));
    }

    #[test]
    fn titles_are_xml_escaped() {
        let svg = line_chart(
            "a < b & c",
            "x",
            "y",
            &[Series {
                label: "s".into(),
                points: vec![(0.0, 0.0), (1.0, 1.0)],
            }],
        );
        assert!(svg.contains("a &lt; b &amp; c"));
    }
}
