//! The `REPRODUCTION.md` generator.
//!
//! Consumes the accumulated figure results ([`FiguresFile`], i.e.
//! `reports/BENCH_figures.json`) and deterministically renders the
//! reproduction evidence: one section per experiment with a markdown
//! results table, a standalone SVG chart, and a pass/warn verdict against
//! the paper's reference trend.  The generator is pure — same input JSON,
//! byte-identical markdown and SVG — so CI can regenerate the committed
//! report and fail on drift.

use crate::model::{FigureResult, FiguresFile};
use crate::svg::{self, Series};
use crate::verdict::{assess, CheckKind, Verdict};
use std::fmt::Write as _;

/// A fully rendered reproduction report: the markdown document plus the
/// chart files it references.
#[derive(Debug, Clone)]
pub struct Reproduction {
    /// The `REPRODUCTION.md` document.
    pub markdown: String,
    /// `(file name, SVG document)` pairs, one per charted experiment.
    pub svgs: Vec<(String, String)>,
}

/// How one experiment id is charted.
struct ChartSpec {
    /// Columns plotted as series (bar charts) — `None` means every numeric
    /// column.
    value_cols: Option<&'static [usize]>,
    /// Y-axis label.
    y_label: &'static str,
}

/// Per-id chart overrides; the default plots every numeric column.
fn chart_spec(id: &str) -> ChartSpec {
    let (value_cols, y_label): (Option<&'static [usize]>, &'static str) = match id {
        "fig08" => (Some(&[3]), "ATraPos / PLP throughput"),
        "tab02" => (Some(&[1, 2]), "TPS"),
        "fig10" | "fig11" | "fig12" | "fig13" | "ycsb01" | "ycsb02" | "overload02" | "spec01" => {
            (None, "KTPS")
        }
        // The load sweep's chart plots the goodput group; the p99 and
        // rejection columns live in the table.
        "overload01" => (Some(&[1, 2, 3, 4]), "goodput (KTPS)"),
        "abl01" => (Some(&[3]), "ATraPos / PLP speedup"),
        "abl02" => (Some(&[1, 2]), "KTPS"),
        "abl03" => (Some(&[1, 2]), "KTPS"),
        "abl04" => (Some(&[3]), "KTPS"),
        _ => (None, "value"),
    };
    ChartSpec {
        value_cols,
        y_label,
    }
}

/// The columns of `fig` whose every cell parses as a number.
fn numeric_columns(fig: &FigureResult) -> Vec<usize> {
    (1..fig.header.len())
        .filter(|&c| !fig.rows.is_empty() && (0..fig.rows.len()).all(|r| fig.num(r, c).is_some()))
        .collect()
}

/// Chart `fig` as an SVG document: a line chart when the first column is a
/// numeric axis (the time-series figures), a grouped bar chart otherwise.
/// Returns `None` for results with no plottable data.
pub fn chart(fig: &FigureResult) -> Option<String> {
    if fig.rows.is_empty() {
        return None;
    }
    let spec = chart_spec(&fig.id);
    let cols: Vec<usize> = match spec.value_cols {
        Some(cols) => cols.to_vec(),
        None => numeric_columns(fig),
    };
    let cols: Vec<usize> = cols
        .into_iter()
        .filter(|&c| (0..fig.rows.len()).all(|r| fig.num(r, c).is_some()))
        .collect();
    if cols.is_empty() {
        return None;
    }
    let x_axis_numeric = (0..fig.rows.len()).all(|r| fig.num(r, 0).is_some());
    if x_axis_numeric {
        let series: Vec<Series> = cols
            .iter()
            .map(|&c| Series {
                label: fig.header[c].clone(),
                points: (0..fig.rows.len())
                    .map(|r| (fig.num(r, 0).unwrap(), fig.num(r, c).unwrap()))
                    .collect(),
            })
            .collect();
        Some(svg::line_chart(
            &fig.title,
            &fig.header[0],
            spec.y_label,
            &series,
        ))
    } else {
        let categories: Vec<String> = fig.rows.iter().map(|r| r[0].clone()).collect();
        let labels: Vec<String> = cols.iter().map(|&c| fig.header[c].clone()).collect();
        let values: Vec<Vec<f64>> = (0..fig.rows.len())
            .map(|r| cols.iter().map(|&c| fig.num(r, c).unwrap()).collect())
            .collect();
        Some(svg::bar_chart(
            &fig.title,
            spec.y_label,
            &categories,
            &labels,
            &values,
        ))
    }
}

/// Escape a table cell for markdown.
fn cell(text: &str) -> String {
    text.replace('|', "\\|")
}

/// Render `fig`'s rows as a markdown table.
fn markdown_table(fig: &FigureResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| {} |",
        fig.header
            .iter()
            .map(|h| cell(h))
            .collect::<Vec<_>>()
            .join(" | ")
    );
    let _ = writeln!(
        out,
        "|{}|",
        fig.header
            .iter()
            .map(|_| "---")
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in &fig.rows {
        let _ = writeln!(
            out,
            "| {} |",
            row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(" | ")
        );
    }
    out
}

/// Generate the full report from `figures`.
///
/// `svg_dir` is the directory prefix used in the markdown image links
/// (e.g. `reports/figures`), relative to wherever `REPRODUCTION.md` is
/// written.
pub fn generate(figures: &FiguresFile, svg_dir: &str) -> Reproduction {
    let mut md = String::new();
    let mut svgs = Vec::new();

    md.push_str("# ATraPos reproduction report\n\n");
    md.push_str(
        "<!-- GENERATED FILE — do not edit by hand.\n     \
         Regenerate with: cargo run --release -p atrapos-bench --bin atrapos -- report -->\n\n",
    );
    md.push_str(
        "How faithfully this repository reproduces the evaluation of *ATraPos: \
         Adaptive Transaction Processing on Hardware Islands* (Porobic, Liarou, \
         Tözün, Ailamaki — ICDE 2014), regenerated from the recorded experiment \
         results in `reports/BENCH_figures.json`.  Every number comes from the \
         deterministic virtual-time simulator (same seed ⇒ same result, on any \
         host); each section states the paper's reference trend and whether the \
         recorded data shows it.  Absolute throughput is *not* compared against \
         the paper — the simulator is calibrated to public latency figures, not \
         to the 2013 test machine — the verdicts check the trends the paper's \
         conclusions rest on.\n\n",
    );
    md.push_str(
        "Regenerate the underlying data with `atrapos figures`, then rebuild \
         this report with `atrapos report` (see `ARCHITECTURE.md` for the data \
         flow).\n\n",
    );

    // Summary table.
    md.push_str("## Summary\n\n");
    md.push_str("| experiment | result | verdict |\n|---|---|---|\n");
    let mut passes = 0usize;
    let mut checks = 0usize;
    let mut slo_passes = 0usize;
    let mut slo_checks = 0usize;
    for fig in &figures.figures {
        let verdict_cell = match assess(fig) {
            Some(a) => {
                match a.kind {
                    CheckKind::ReferenceTrend => {
                        checks += 1;
                        passes += usize::from(a.verdict == Verdict::Pass);
                    }
                    CheckKind::Slo => {
                        slo_checks += 1;
                        slo_passes += usize::from(a.verdict == Verdict::Pass);
                    }
                }
                a.verdict.badge().to_string()
            }
            None => "—".to_string(),
        };
        let _ = writeln!(
            md,
            "| [{id}](#{id}) | {title} | {verdict_cell} |",
            id = fig.id,
            title = cell(&fig.title),
        );
    }
    md.push('\n');
    let _ = write!(md, "**{passes} of {checks} reference trends reproduced.**");
    if slo_checks > 0 {
        let _ = write!(md, " **{slo_passes} of {slo_checks} open-loop SLOs met.**");
    }
    md.push_str("\n\n");

    // One section per experiment.
    for fig in &figures.figures {
        let _ = writeln!(
            md,
            "## <a id=\"{id}\"></a>{id} — {title}\n",
            id = fig.id,
            title = fig.title
        );
        if let Some(meta) = &fig.meta {
            let _ = writeln!(md, "*Simulated on {}.*\n", meta.summary());
        }
        md.push_str(&markdown_table(fig));
        md.push('\n');
        if let Some(svg) = chart(fig) {
            let name = format!("{}.svg", fig.id);
            let _ = writeln!(md, "![{id}]({svg_dir}/{name})\n", id = fig.id);
            svgs.push((name, svg));
        }
        for note in &fig.notes {
            let _ = writeln!(md, "> {note}\n");
        }
        match assess(fig) {
            Some(a) => {
                let source = match a.kind {
                    CheckKind::ReferenceTrend => "paper",
                    CheckKind::Slo => "target",
                };
                let _ = writeln!(
                    md,
                    "**{}: {}** — {source}: {}. This run: {}.\n",
                    a.kind.label(),
                    a.verdict.badge(),
                    a.expected,
                    a.observed
                );
            }
            None => {
                md.push_str(
                    "*No reference check — qualitative experiment; see the notes above.*\n\n",
                );
            }
        }
    }

    Reproduction { markdown: md, svgs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figures() -> FiguresFile {
        let mut file = FiguresFile::new();
        let mut f08 = FigureResult::new(
            "fig08",
            "Standard benchmarks",
            vec!["workload", "PLP (KTPS)", "ATraPos (KTPS)", "ATraPos / PLP"],
        );
        f08.push_row(vec![
            "TATP-Mix".into(),
            "10.0".into(),
            "44.0".into(),
            "4.4".into(),
        ]);
        f08.note("paper reports 4.4x");
        file.upsert(f08);
        let mut f10 = FigureResult::new(
            "fig10",
            "Adapting to workload changes",
            vec!["time (s)", "Static", "ATraPos"],
        );
        for (t, s, a) in [(0.05, 10.0, 10.0), (0.10, 6.0, 9.0), (0.15, 6.0, 12.0)] {
            f10.push_row(vec![format!("{t:.2}"), format!("{s}"), format!("{a}")]);
        }
        file.upsert(f10);
        file
    }

    #[test]
    fn generate_is_deterministic() {
        let figures = sample_figures();
        let a = generate(&figures, "reports/figures");
        let b = generate(&figures, "reports/figures");
        assert_eq!(a.markdown, b.markdown);
        assert_eq!(a.svgs, b.svgs);
    }

    #[test]
    fn report_contains_sections_tables_charts_and_verdicts() {
        let r = generate(&sample_figures(), "reports/figures");
        assert!(r.markdown.contains("## Summary"));
        assert!(r.markdown.contains("fig08 — Standard benchmarks"));
        assert!(r.markdown.contains("| TATP-Mix | 10.0 | 44.0 | 4.4 |"));
        assert!(r.markdown.contains("![fig08](reports/figures/fig08.svg)"));
        assert!(r.markdown.contains("**Verdict: ✅ pass**"));
        assert!(r.markdown.contains("2 of 2 reference trends reproduced"));
        let names: Vec<&str> = r.svgs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["fig08.svg", "fig10.svg"]);
        // fig08 has a text first column → bars; fig10 has a numeric time
        // axis → lines.
        assert!(r.svgs[0].1.contains("<rect"));
        assert!(r.svgs[1].1.contains("<polyline"));
    }

    #[test]
    fn slo_experiments_render_their_own_verdict_kind_and_summary_count() {
        let mut file = sample_figures();
        let mut ov = FigureResult::new(
            "overload02",
            "Burst recovery under open-loop load",
            vec![
                "time (s)",
                "Centralized",
                "Shared-nothing",
                "PLP",
                "ATraPos",
            ],
        );
        for (t, v) in [(0.1, 35.0), (0.2, 12.0), (0.3, 34.0)] {
            ov.push_row(vec![
                format!("{t:.1}"),
                format!("{}", v * 0.2),
                format!("{}", v * 0.6),
                format!("{}", v * 0.8),
                format!("{v}"),
            ]);
        }
        file.upsert(ov);
        let r = generate(&file, "reports/figures");
        assert!(r.markdown.contains("**SLO verdict: ✅ pass** — target:"));
        assert!(r
            .markdown
            .contains("**2 of 2 reference trends reproduced.** **1 of 1 open-loop SLOs met.**"));
    }

    #[test]
    fn experiments_without_checks_render_without_a_verdict() {
        let mut file = FiguresFile::new();
        let mut f = FigureResult::new("fig07", "NewOrder flow graph", vec!["node", "socket"]);
        f.push_row(vec!["root".into(), "0".into()]);
        file.upsert(f);
        let r = generate(&file, "x");
        assert!(r.markdown.contains("No reference check"));
        assert!(!r.markdown.contains("**Verdict"));
    }
}
