//! The serializable experiment-result model.
//!
//! A [`FigureResult`] is the outcome of regenerating one table or figure of
//! the paper's evaluation: an id, a caption, a header, data rows, free-form
//! notes, and the [`RunMeta`] describing the simulation that produced it.
//! Everything is plain data — the harness emits it, `reports/BENCH_figures.json`
//! stores it, and the report generator consumes it without re-running
//! anything.

use atrapos_engine::RunMeta;
use serde::{Deserialize, Serialize};

/// The outcome of regenerating one table or figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Experiment identifier ("fig02", "tab01", "abl03", ...).
    pub id: String,
    /// Title matching the paper's caption.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (scaling factors, expected shape).
    pub notes: Vec<String>,
    /// Provenance of the run that produced the rows, when recorded.
    pub meta: Option<RunMeta>,
}

impl FigureResult {
    /// Create a result with the given id/title/header.
    pub fn new(id: impl Into<String>, title: impl Into<String>, header: Vec<&str>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            header: header.into_iter().map(String::from).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            meta: None,
        }
    }

    /// Append a data row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Append a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Record the provenance of the run.
    pub fn set_meta(&mut self, meta: RunMeta) {
        self.meta = Some(meta);
    }

    /// The numeric value of cell (`row`, `col`), if it parses as a float.
    pub fn num(&self, row: usize, col: usize) -> Option<f64> {
        self.rows.get(row)?.get(col)?.trim().parse::<f64>().ok()
    }

    /// Every value of `col` that parses as a float, in row order.
    pub fn column(&self, col: usize) -> Vec<f64> {
        (0..self.rows.len())
            .filter_map(|r| self.num(r, col))
            .collect()
    }

    /// Render as an aligned plain-text table (the CLI's terminal output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// The canonical experiment order of `BENCH_figures.json` and
/// `REPRODUCTION.md`: paper order, then the ablations, then the YCSB
/// extension pair, then the open-loop overload pair.
pub const CANONICAL_ORDER: &[&str] = &[
    "fig01",
    "fig02",
    "fig03",
    "fig04",
    "tab01",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "tab02",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "abl01",
    "abl02",
    "abl03",
    "abl04",
    "ycsb01",
    "ycsb02",
    "overload01",
    "overload02",
];

/// Sort key of an experiment id in [`CANONICAL_ORDER`]; unknown ids sort
/// after every known one, alphabetically among themselves.
fn canonical_rank(id: &str) -> (usize, String) {
    match CANONICAL_ORDER.iter().position(|k| *k == id) {
        Some(i) => (i, String::new()),
        None => (CANONICAL_ORDER.len(), id.to_string()),
    }
}

/// The schema tag of `BENCH_figures.json`.
pub const FIGURES_SCHEMA: &str = "atrapos-figures-v1";

/// The accumulated figure-result store (`reports/BENCH_figures.json`).
///
/// `atrapos figures` upserts the results of whatever experiments it ran;
/// entries keep the canonical paper order, so partial regeneration never
/// reshuffles the file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiguresFile {
    /// Schema tag ([`FIGURES_SCHEMA`]).
    pub schema: String,
    /// One entry per experiment, in canonical order.
    pub figures: Vec<FigureResult>,
}

impl FiguresFile {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            schema: FIGURES_SCHEMA.to_string(),
            figures: Vec::new(),
        }
    }

    /// Parse a store from JSON text, rejecting unknown schema tags.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let file: Self = serde::json::from_str(text).map_err(|e| e.to_string())?;
        if file.schema != FIGURES_SCHEMA {
            return Err(format!(
                "unsupported figures schema '{}' (expected '{FIGURES_SCHEMA}')",
                file.schema
            ));
        }
        Ok(file)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Insert or replace the entry with `result`'s id, keeping canonical
    /// order.
    pub fn upsert(&mut self, result: FigureResult) {
        self.figures.retain(|f| f.id != result.id);
        self.figures.push(result);
        self.figures.sort_by_key(|f| canonical_rank(&f.id));
    }

    /// The entry with the given id, if present.
    pub fn get(&self, id: &str) -> Option<&FigureResult> {
        self.figures.iter().find(|f| f.id == id)
    }
}

impl Default for FiguresFile {
    fn default() -> Self {
        Self::new()
    }
}

/// Format a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_includes_notes() {
        let mut f = FigureResult::new("figXX", "test figure", vec!["a", "bbbb"]);
        f.push_row(vec!["1".into(), "2".into()]);
        f.push_row(vec!["100".into(), "2000".into()]);
        f.note("scaled");
        let s = f.render();
        assert!(s.contains("figXX"));
        assert!(s.contains("note: scaled"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn fmt_uses_sensible_precision() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(1.2345), "1.234");
    }

    #[test]
    fn numeric_cell_access_parses_floats_only() {
        let mut f = FigureResult::new("figXX", "t", vec!["label", "v"]);
        f.push_row(vec!["uniform".into(), "1.25".into()]);
        f.push_row(vec!["skewed".into(), "3".into()]);
        assert_eq!(f.num(0, 1), Some(1.25));
        assert_eq!(f.num(0, 0), None);
        assert_eq!(f.column(1), vec![1.25, 3.0]);
    }

    #[test]
    fn upsert_replaces_in_canonical_order() {
        let mut file = FiguresFile::new();
        file.upsert(FigureResult::new("abl01", "a", vec!["x"]));
        file.upsert(FigureResult::new("fig08", "f", vec!["x"]));
        file.upsert(FigureResult::new("tab02", "t", vec!["x"]));
        let ids: Vec<&str> = file.figures.iter().map(|f| f.id.as_str()).collect();
        assert_eq!(ids, vec!["fig08", "tab02", "abl01"]);
        let mut replacement = FigureResult::new("fig08", "updated", vec!["x"]);
        replacement.push_row(vec!["1".into()]);
        file.upsert(replacement);
        assert_eq!(file.figures.len(), 3);
        assert_eq!(file.get("fig08").unwrap().title, "updated");
    }

    #[test]
    fn figures_file_round_trips_and_rejects_bad_schema() {
        let mut file = FiguresFile::new();
        let mut f = FigureResult::new("fig10", "adapting", vec!["t", "s"]);
        f.push_row(vec!["0.05".into(), "12.3".into()]);
        f.note("n");
        file.upsert(f);
        let json = file.to_json();
        assert_eq!(FiguresFile::from_json(&json).unwrap(), file);
        let bad = json.replace(FIGURES_SCHEMA, "other-schema");
        assert!(FiguresFile::from_json(&bad).is_err());
    }
}
