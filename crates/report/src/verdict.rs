//! Pass/warn verdicts against the paper's reference trends and the
//! open-loop SLOs.
//!
//! The reproduction report does not compare absolute numbers to the paper —
//! the simulator's virtual-time constants are calibrated, not identical to
//! 2013 hardware — it checks the *trends* the paper's conclusions rest on
//! (e.g. "ATraPos exceeds PLP on every standard benchmark", "after a socket
//! failure the adaptive system out-performs the static one").  The open-loop
//! overload experiments carry a second kind of check, an [SLO](CheckKind::Slo)
//! verdict: a service-level objective over goodput, tail latency, and
//! rejection ("nothing is rejected below saturation", "goodput degrades
//! gracefully past it", "a burst's backlog drains").  Each check reads the
//! serialized [`FigureResult`] rows, so a verdict can be recomputed from
//! `BENCH_figures.json` without re-running any simulation.

use crate::model::FigureResult;

/// Did the run reproduce the paper's trend?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The reference trend holds in the recorded data.
    Pass,
    /// The recorded data does not show the reference trend.
    Warn,
}

impl Verdict {
    /// `Pass` if `ok`, `Warn` otherwise.
    fn from_bool(ok: bool) -> Self {
        if ok {
            Verdict::Pass
        } else {
            Verdict::Warn
        }
    }

    /// Markdown badge for the report.
    pub fn badge(self) -> &'static str {
        match self {
            Verdict::Pass => "✅ pass",
            Verdict::Warn => "⚠️ warn",
        }
    }
}

/// What a check is checking: a trend from the paper, or a service-level
/// objective of the open-loop extension experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// A trend the paper's evaluation reports (the default for every
    /// reproduced figure and ablation).
    ReferenceTrend,
    /// A service-level objective over the open-loop metrics — goodput,
    /// tail latency, rejection — with no counterpart in the paper.
    Slo,
}

impl CheckKind {
    /// The label used when rendering the verdict line.
    pub fn label(self) -> &'static str {
        match self {
            CheckKind::ReferenceTrend => "Verdict",
            CheckKind::Slo => "SLO verdict",
        }
    }
}

/// One checked reference trend or SLO: the verdict, what was expected,
/// and what the recorded data shows.
#[derive(Debug, Clone)]
pub struct Assessment {
    /// Pass or warn.
    pub verdict: Verdict,
    /// Reference trend or SLO.
    pub kind: CheckKind,
    /// The paper's reference trend (or the SLO), as prose.
    pub expected: String,
    /// The observed numbers backing the verdict.
    pub observed: String,
}

/// Mean of a slice (0 when empty).
fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Mean over the last third of a column — "where the time series settles",
/// used by the adaptive figures whose interesting state is post-event.
fn settled_mean(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    mean(&values[n - (n / 3).max(1)..])
}

/// Mean over the first third of a column — the pre-event baseline of a
/// burst timeline, mirroring [`settled_mean`].
fn leading_mean(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    mean(&values[..(n / 3).max(1)])
}

/// Assess `fig` against its paper reference trend or open-loop SLO, if
/// one is defined for its id.  Experiments without a check (the motivation
/// figures, which are qualitative) return `None`.
pub fn assess(fig: &FigureResult) -> Option<Assessment> {
    match fig.id.as_str() {
        "fig08" => {
            let ratios = fig.column(3);
            let lo = ratios.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            // The TATP rows carry the headline speedups; the TPC-C margin
            // shrinks towards parity at the reduced scale.
            let tatp_ok = fig
                .rows
                .iter()
                .enumerate()
                .filter(|(_, row)| row.first().is_some_and(|l| l.starts_with("TATP")))
                .all(|(r, _)| fig.num(r, 3).is_some_and(|v| v >= 1.2));
            let tatp_count = fig
                .rows
                .iter()
                .filter(|row| row.first().is_some_and(|l| l.starts_with("TATP")))
                .count();
            Some(Assessment {
                kind: CheckKind::ReferenceTrend,
                verdict: Verdict::from_bool(
                    tatp_count > 0
                        && tatp_ok
                        && !ratios.is_empty()
                        && lo >= 0.95
                        && mean(&ratios) > 1.0,
                ),
                expected: "ATraPos clearly beats PLP on every TATP workload (paper: \
                           3.2x–6.7x) and at least matches it on TPC-C (paper: \
                           1.4x–2.7x; the TPC-C margin shrinks at the reduced scale)"
                    .into(),
                observed: format!(
                    "ATraPos/PLP ratio spans {lo:.2}x–{hi:.2}x over {} workloads",
                    ratios.len()
                ),
            })
        }
        "tab02" => {
            let overheads = fig.column(3);
            let hi = overheads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            Some(Assessment {
                kind: CheckKind::ReferenceTrend,
                verdict: Verdict::from_bool(!overheads.is_empty() && hi <= 5.0),
                expected: "monitoring costs at most a few percent of throughput \
                           (paper: ≤ 3.32%)"
                    .into(),
                observed: format!("worst-case overhead {hi:.2}%"),
            })
        }
        "fig10" => {
            // The switches change the transaction type, not the balance, so
            // the static partitioning is not penalized at this scale: the
            // reproducible trend is that ATraPos follows every switch while
            // paying no more than monitoring overhead.
            let statics = fig.column(1);
            let adaptives = fig.column(2);
            let s = settled_mean(&statics);
            let a = settled_mean(&adaptives);
            Some(Assessment {
                kind: CheckKind::ReferenceTrend,
                verdict: Verdict::from_bool(!adaptives.is_empty() && s > 0.0 && a >= 0.95 * s),
                expected: "throughput follows each workload switch and ATraPos stays \
                           within monitoring overhead (< 5%) of the static \
                           configuration (paper: ATraPos overtakes a mistuned static \
                           partitioning; the simulated static baseline is never \
                           mistuned, so parity is the reproducible trend)"
                    .into(),
                observed: format!(
                    "settled throughput: ATraPos {a:.1} KTPS vs static {s:.1} KTPS ({:.3}x)",
                    if s > 0.0 { a / s } else { 0.0 }
                ),
            })
        }
        "fig11" | "fig12" => {
            let statics = fig.column(1);
            let adaptives = fig.column(2);
            let s = settled_mean(&statics);
            let a = settled_mean(&adaptives);
            let context = if fig.id == "fig11" {
                "after the skew appears"
            } else {
                "after the socket failure"
            };
            Some(Assessment {
                kind: CheckKind::ReferenceTrend,
                verdict: Verdict::from_bool(!adaptives.is_empty() && a >= s),
                expected: format!(
                    "ATraPos repartitions and overtakes the static configuration {context}"
                ),
                observed: format!(
                    "settled throughput: ATraPos {a:.1} KTPS vs static {s:.1} KTPS ({:.2}x)",
                    if s > 0.0 { a / s } else { 0.0 }
                ),
            })
        }
        "fig13" => {
            // Per-phase means of the ATraPos series (column 2 labels the
            // phase); under frequent alternation no phase may collapse.
            let mut phases: Vec<(String, Vec<f64>)> = Vec::new();
            for (r, row) in fig.rows.iter().enumerate() {
                let Some(v) = fig.num(r, 1) else { continue };
                let label = row.get(2).cloned().unwrap_or_default();
                match phases.last_mut() {
                    Some((l, vs)) if *l == label => vs.push(v),
                    _ => phases.push((label, vec![v])),
                }
            }
            let means: Vec<f64> = phases.iter().map(|(_, vs)| mean(vs)).collect();
            let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            Some(Assessment {
                kind: CheckKind::ReferenceTrend,
                verdict: Verdict::from_bool(means.len() >= 2 && lo > 0.35 * hi),
                expected: "throughput keeps recovering under frequent A/B alternation; \
                           no phase collapses"
                    .into(),
                observed: format!(
                    "per-phase mean throughput spans {lo:.1}–{hi:.1} KTPS over {} phases",
                    means.len()
                ),
            })
        }
        "abl01" => {
            let westmere = fig.num(0, 3).unwrap_or(0.0);
            let uniform = fig.num(1, 3).unwrap_or(0.0);
            Some(Assessment {
                kind: CheckKind::ReferenceTrend,
                verdict: Verdict::from_bool(
                    westmere >= 1.15 && westmere > uniform && (uniform - 1.0).abs() <= 0.25,
                ),
                expected: "the ATraPos advantage over PLP comes from NUMA-awareness: \
                           a clear speedup under the Westmere interconnect, ~1x under \
                           uniform costs"
                    .into(),
                observed: format!("speedup {westmere:.2}x (westmere) vs {uniform:.2}x (uniform)"),
            })
        }
        "abl02" => {
            let ratios = fig.column(3);
            let (first, last) = (
                ratios.first().copied().unwrap_or(0.0),
                ratios.last().copied().unwrap_or(0.0),
            );
            Some(Assessment {
                kind: CheckKind::ReferenceTrend,
                verdict: Verdict::from_bool(ratios.len() >= 2 && last > first && last >= 1.0),
                expected: "the ATraPos layout's advantage over the naive \
                           one-partition-per-table-per-core scheme grows with the \
                           oversubscription penalty"
                    .into(),
                observed: format!(
                    "ATraPos/naive ratio grows from {first:.2}x (no penalty) to {last:.2}x \
                     (full penalty)"
                ),
            })
        }
        "abl03" => {
            // Rows are keyed by sub-partition count in column 0.
            let after = |subs: f64| {
                (0..fig.rows.len())
                    .find(|&r| fig.num(r, 0) == Some(subs))
                    .and_then(|r| fig.num(r, 2))
            };
            let coarse = after(2.0).unwrap_or(0.0);
            let paper_choice = after(10.0).unwrap_or(0.0);
            Some(Assessment {
                kind: CheckKind::ReferenceTrend,
                verdict: Verdict::from_bool(paper_choice >= coarse && paper_choice > 0.0),
                expected: "10 sub-partitions per partition (the paper's choice) adapts to \
                           the hotspot at least as well as the coarsest granule"
                    .into(),
                observed: format!(
                    "post-adaptation throughput {paper_choice:.1} KTPS at 10 sub-partitions \
                     vs {coarse:.1} KTPS at 2"
                ),
            })
        }
        "abl04" => {
            let range_dist = fig.num(0, 2).unwrap_or(f64::NAN);
            let advised_dist = fig.num(1, 2).unwrap_or(f64::NAN);
            let range_tps = fig.num(0, 3).unwrap_or(0.0);
            let advised_tps = fig.num(1, 3).unwrap_or(0.0);
            Some(Assessment {
                kind: CheckKind::ReferenceTrend,
                verdict: Verdict::from_bool(advised_dist < range_dist && advised_tps > range_tps),
                expected: "the §VII advisor's plan removes nearly all distributed \
                           transactions of the shifted workload and raises throughput"
                    .into(),
                observed: format!(
                    "distributed txns {advised_dist:.0} (advisor) vs {range_dist:.0} (range); \
                     throughput {advised_tps:.1} vs {range_tps:.1} KTPS"
                ),
            })
        }
        "ycsb01" => {
            // Columns: theta | Centralized | Shared-nothing | PLP | ATraPos.
            let plp = fig.column(3);
            let atrapos = fig.column(4);
            let n = plp.len().min(atrapos.len());
            // "Matches" allows sub-percent jitter at the contention-bound
            // high-skew points; the uniform point must be a clear win.
            let matched = (0..n).filter(|&r| atrapos[r] >= 0.97 * plp[r]).count();
            let worst_ratio = (0..n)
                .map(|r| {
                    if plp[r] > 0.0 {
                        atrapos[r] / plp[r]
                    } else {
                        0.0
                    }
                })
                .fold(f64::INFINITY, f64::min);
            let uniform_win = n > 0 && atrapos[0] >= 1.1 * plp[0];
            Some(Assessment {
                kind: CheckKind::ReferenceTrend,
                verdict: Verdict::from_bool(n >= 2 && matched == n && uniform_win),
                expected: "the partitioned shared-everything advantage carries over to \
                           YCSB-A: ATraPos clearly beats PLP at uniform load and at \
                           least matches it (within 3%) at every Zipfian skew level, \
                           even as skew drives both toward their hot partitions' \
                           capacity"
                    .into(),
                observed: format!(
                    "ATraPos matches or beats PLP at {matched} of {n} theta values \
                     (worst ATraPos/PLP ratio {worst_ratio:.2}x)"
                ),
            })
        }
        "ycsb02" => {
            // Columns: time | Centralized | Shared-nothing | PLP | ATraPos.
            // The interesting state is deep into the drift — the settled
            // tail, where every static layout has been wrong for a while.
            let best_static = (1..=3)
                .map(|c| settled_mean(&fig.column(c)))
                .fold(f64::NEG_INFINITY, f64::max);
            let atrapos = settled_mean(&fig.column(4));
            Some(Assessment {
                kind: CheckKind::ReferenceTrend,
                verdict: Verdict::from_bool(atrapos > 0.0 && atrapos >= best_static),
                expected: "under a continuously drifting hotspot the adaptive ATraPos \
                           configuration keeps repartitioning toward the moving hot \
                           window and settles above every static design, repartition \
                           pauses included"
                    .into(),
                observed: format!(
                    "settled throughput: ATraPos {atrapos:.1} KTPS vs best static \
                     {best_static:.1} KTPS ({:.2}x)",
                    if best_static > 0.0 {
                        atrapos / best_static
                    } else {
                        0.0
                    }
                ),
            })
        }
        "overload01" => {
            // Columns: multiplier | goodput ×4 | p99 ×4 | rejected% ×4,
            // one row per offered-load multiple of saturation.
            let row_at = |mult: f64| (0..fig.rows.len()).find(|&r| fig.num(r, 0) == Some(mult));
            let (half, one, three) = (row_at(0.5), row_at(1.0), row_at(3.0));
            // Below saturation the queue must shed (almost) nothing.
            let max_rejected_below_sat = half
                .map(|r| {
                    (9..=12)
                        .filter_map(|c| fig.num(r, c))
                        .fold(0.0f64, f64::max)
                })
                .unwrap_or(f64::INFINITY);
            // Past saturation goodput must hold near capacity — the worst
            // per-design 3×/1× goodput ratio bounds the degradation.
            let worst_degradation = match (one, three) {
                (Some(r1), Some(r3)) => (1..=4)
                    .map(|c| {
                        let at_sat = fig.num(r1, c).unwrap_or(0.0);
                        let overloaded = fig.num(r3, c).unwrap_or(0.0);
                        if at_sat > 0.0 {
                            overloaded / at_sat
                        } else {
                            0.0
                        }
                    })
                    .fold(f64::INFINITY, f64::min),
                _ => 0.0,
            };
            Some(Assessment {
                kind: CheckKind::Slo,
                verdict: Verdict::from_bool(
                    max_rejected_below_sat <= 1.0 && worst_degradation >= 0.7,
                ),
                expected: "at 0.5x saturation the admission queue rejects at most 1% on \
                           every design, and past saturation goodput degrades \
                           gracefully: at 3x offered load every design keeps at least \
                           70% of its 1x goodput"
                    .into(),
                observed: format!(
                    "worst rejection at 0.5x load {max_rejected_below_sat:.2}%; worst \
                     3x/1x goodput ratio {worst_degradation:.2}x"
                ),
            })
        }
        "overload02" => {
            // Columns: time | Centralized | Shared-nothing | PLP | ATraPos.
            // The timeline is baseline / burst / recovery in equal-ish
            // thirds; the SLO is that every design's goodput returns to
            // its own baseline once the burst's backlog drains.
            let worst_recovery = (1..=4)
                .map(|c| {
                    let series = fig.column(c);
                    let baseline = leading_mean(&series);
                    let recovered = settled_mean(&series);
                    if baseline > 0.0 {
                        recovered / baseline
                    } else {
                        0.0
                    }
                })
                .fold(f64::INFINITY, f64::min);
            Some(Assessment {
                kind: CheckKind::Slo,
                verdict: Verdict::from_bool(!fig.rows.is_empty() && worst_recovery >= 0.85),
                expected: "after the 2.5x burst subsides, every design drains its \
                           backlog and recovers to at least 85% of its pre-burst \
                           goodput within the recovery window"
                    .into(),
                observed: format!(
                    "worst recovered/baseline goodput ratio across the four designs \
                     {worst_recovery:.2}x"
                ),
            })
        }
        "spec01" => {
            // Columns: workload | Centralized | Shared-nothing | PLP |
            // ATraPos, one row per shipped spec-only workload.  These
            // workloads exist only as data, so the check is the figure's
            // promised shape: the compiled engine keeps the adaptive
            // design's edge — ATraPos at or above PLP (within 3% jitter)
            // on every row.
            let n = fig.rows.len();
            let matched = (0..n)
                .filter(|&r| {
                    let plp = fig.num(r, 3).unwrap_or(f64::INFINITY);
                    let atrapos = fig.num(r, 4).unwrap_or(0.0);
                    atrapos > 0.0 && atrapos >= 0.97 * plp
                })
                .count();
            let worst_ratio = (0..n)
                .map(|r| {
                    let plp = fig.num(r, 3).unwrap_or(0.0);
                    let atrapos = fig.num(r, 4).unwrap_or(0.0);
                    if plp > 0.0 {
                        atrapos / plp
                    } else {
                        0.0
                    }
                })
                .fold(f64::INFINITY, f64::min);
            Some(Assessment {
                kind: CheckKind::ReferenceTrend,
                verdict: Verdict::from_bool(n >= 3 && matched == n),
                expected: "the declarative engine preserves the design ranking on \
                           workloads that exist only as spec files: ATraPos matches \
                           or beats PLP (within 3%) on every spec-only row"
                    .into(),
                observed: format!(
                    "ATraPos matches or beats PLP on {matched} of {n} spec workloads \
                     (worst ATraPos/PLP ratio {worst_ratio:.2}x)"
                ),
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig(id: &str, header: Vec<&str>, rows: Vec<Vec<&str>>) -> FigureResult {
        let mut f = FigureResult::new(id, "t", header);
        for row in rows {
            f.push_row(row.into_iter().map(String::from).collect());
        }
        f
    }

    #[test]
    fn fig08_needs_clear_tatp_wins_and_tpcc_parity() {
        let f = fig(
            "fig08",
            vec!["workload", "PLP", "ATraPos", "ratio"],
            vec![
                vec!["TATP-Mix", "1", "2", "2.0"],
                vec!["TPCC-Mix", "1", "0.99", "0.99"],
            ],
        );
        assert_eq!(assess(&f).unwrap().verdict, Verdict::Pass);
        // A TATP ratio below the clear-win bar is a warn…
        let f = fig(
            "fig08",
            vec!["workload", "PLP", "ATraPos", "ratio"],
            vec![vec!["TATP-Mix", "1", "1.1", "1.1"]],
        );
        assert_eq!(assess(&f).unwrap().verdict, Verdict::Warn);
        // …and so is a TPC-C collapse, even with strong TATP wins.
        let f = fig(
            "fig08",
            vec!["workload", "PLP", "ATraPos", "ratio"],
            vec![
                vec!["TATP-Mix", "1", "3", "3.0"],
                vec!["TPCC-Mix", "1", "0.5", "0.5"],
            ],
        );
        assert_eq!(assess(&f).unwrap().verdict, Verdict::Warn);
    }

    #[test]
    fn adaptive_figures_compare_settled_means() {
        let f = fig(
            "fig11",
            vec!["time (s)", "Static", "ATraPos"],
            vec![
                vec!["0.1", "10", "10"],
                vec!["0.2", "4", "4"],
                vec!["0.3", "4", "9"],
            ],
        );
        assert_eq!(assess(&f).unwrap().verdict, Verdict::Pass);
    }

    #[test]
    fn fig13_warns_when_a_phase_collapses() {
        let f = fig(
            "fig13",
            vec!["time (s)", "ATraPos", "phase"],
            vec![
                vec!["0.1", "10", "A"],
                vec!["0.2", "1", "B"],
                vec!["0.3", "10", "A"],
            ],
        );
        assert_eq!(assess(&f).unwrap().verdict, Verdict::Warn);
    }

    #[test]
    fn abl04_requires_fewer_distributed_txns_and_more_throughput() {
        let f = fig(
            "abl04",
            vec!["sharding", "est", "measured", "KTPS"],
            vec![
                vec!["range", "1800", "1700", "10.0"],
                vec!["advisor", "12", "9", "25.0"],
            ],
        );
        assert_eq!(assess(&f).unwrap().verdict, Verdict::Pass);
    }

    #[test]
    fn ycsb01_needs_a_uniform_win_and_parity_under_skew() {
        let header = vec!["theta", "Centralized", "Shared-nothing", "PLP", "ATraPos"];
        let f = fig(
            "ycsb01",
            header.clone(),
            vec![
                vec!["0", "900", "3000", "4000", "5000"],
                vec!["0.99", "900", "1100", "740", "745"],
            ],
        );
        assert_eq!(assess(&f).unwrap().verdict, Verdict::Pass);
        // A clear loss at high skew is a warn…
        let f = fig(
            "ycsb01",
            header.clone(),
            vec![
                vec!["0", "900", "3000", "4000", "5000"],
                vec!["0.99", "900", "1100", "1000", "700"],
            ],
        );
        assert_eq!(assess(&f).unwrap().verdict, Verdict::Warn);
        // …and so is mere parity at uniform load.
        let f = fig(
            "ycsb01",
            header,
            vec![
                vec!["0", "900", "3000", "4000", "4050"],
                vec!["0.99", "900", "1100", "740", "745"],
            ],
        );
        assert_eq!(assess(&f).unwrap().verdict, Verdict::Warn);
    }

    #[test]
    fn ycsb02_compares_the_settled_tail_against_the_best_static_design() {
        let header = vec![
            "time (s)",
            "Centralized",
            "Shared-nothing",
            "PLP",
            "ATraPos",
        ];
        let f = fig(
            "ycsb02",
            header.clone(),
            vec![
                vec!["0.1", "900", "3000", "4000", "5000"],
                vec!["0.2", "900", "1100", "1000", "400"],
                vec!["0.3", "900", "1100", "1000", "1500"],
            ],
        );
        assert_eq!(assess(&f).unwrap().verdict, Verdict::Pass);
        // Trailing *any* static design in the settled tail is a warn —
        // including shared-nothing, not just PLP.
        let f = fig(
            "ycsb02",
            header,
            vec![
                vec!["0.1", "900", "3000", "4000", "5000"],
                vec!["0.2", "900", "1100", "1000", "400"],
                vec!["0.3", "900", "1600", "1000", "1500"],
            ],
        );
        assert_eq!(assess(&f).unwrap().verdict, Verdict::Warn);
    }

    #[test]
    fn overload01_checks_rejection_below_and_degradation_past_saturation() {
        let header = vec![
            "offered (x sat)",
            "C goodput (KTPS)",
            "SN goodput (KTPS)",
            "PLP goodput (KTPS)",
            "ATraPos goodput (KTPS)",
            "C p99 (us)",
            "SN p99 (us)",
            "PLP p99 (us)",
            "ATraPos p99 (us)",
            "C rejected (%)",
            "SN rejected (%)",
            "PLP rejected (%)",
            "ATraPos rejected (%)",
        ];
        let good = vec![
            vec![
                "0.5", "5", "15", "20", "25", "40", "40", "40", "40", "0", "0", "0", "0",
            ],
            vec![
                "1", "10", "30", "40", "50", "90", "90", "90", "90", "2", "2", "2", "2",
            ],
            vec![
                "3", "9.5", "29", "38", "48", "300", "300", "300", "300", "66", "66", "66", "66",
            ],
        ];
        let a = assess(&fig("overload01", header.clone(), good.clone())).unwrap();
        assert_eq!(a.verdict, Verdict::Pass);
        assert_eq!(a.kind, CheckKind::Slo);
        // Rejecting under light load violates the SLO…
        let mut rejecting = good.clone();
        rejecting[0][9] = "5";
        let a = assess(&fig("overload01", header.clone(), rejecting)).unwrap();
        assert_eq!(a.verdict, Verdict::Warn);
        // …and so does a goodput collapse past saturation, even on one
        // design.
        let mut collapsing = good;
        collapsing[2][4] = "20";
        let a = assess(&fig("overload01", header, collapsing)).unwrap();
        assert_eq!(a.verdict, Verdict::Warn);
    }

    #[test]
    fn overload02_requires_every_design_to_recover_its_baseline() {
        let header = vec![
            "time (s)",
            "Centralized",
            "Shared-nothing",
            "PLP",
            "ATraPos",
        ];
        let good = vec![
            vec!["0.1", "7", "21", "28", "35"],
            vec!["0.2", "10", "30", "40", "50"],
            vec!["0.3", "7", "20", "27", "34"],
        ];
        let a = assess(&fig("overload02", header.clone(), good.clone())).unwrap();
        assert_eq!(a.verdict, Verdict::Pass);
        assert_eq!(a.kind, CheckKind::Slo);
        // One design failing to drain its backlog is a warn.
        let mut stuck = good;
        stuck[2][3] = "10";
        let a = assess(&fig("overload02", header, stuck)).unwrap();
        assert_eq!(a.verdict, Verdict::Warn);
    }

    #[test]
    fn spec01_requires_atrapos_to_match_plp_on_every_spec_row() {
        let header = vec![
            "workload",
            "Centralized",
            "Shared-nothing",
            "PLP",
            "ATraPos",
        ];
        let good = vec![
            vec!["secondary-index", "10", "30", "40", "41"],
            vec!["scan-write", "8", "20", "25", "24.5"],
            vec!["multi-tenant", "9", "28", "35", "44"],
        ];
        let a = assess(&fig("spec01", header.clone(), good.clone())).unwrap();
        assert_eq!(a.verdict, Verdict::Pass);
        assert_eq!(a.kind, CheckKind::ReferenceTrend);
        // One row where ATraPos clearly trails PLP is a warn…
        let mut bad = good.clone();
        bad[1][4] = "20";
        let a = assess(&fig("spec01", header.clone(), bad)).unwrap();
        assert_eq!(a.verdict, Verdict::Warn);
        // …and so is a truncated table (fewer than the three shipped specs).
        let a = assess(&fig("spec01", header, good[..2].to_vec())).unwrap();
        assert_eq!(a.verdict, Verdict::Warn);
    }

    #[test]
    fn paper_figures_are_reference_trends() {
        let f = fig(
            "tab02",
            vec!["w", "off", "on", "overhead"],
            vec![vec!["m", "10", "9.8", "2.0"]],
        );
        let a = assess(&f).unwrap();
        assert_eq!(a.kind, CheckKind::ReferenceTrend);
        assert_eq!(CheckKind::ReferenceTrend.label(), "Verdict");
        assert_eq!(CheckKind::Slo.label(), "SLO verdict");
    }

    #[test]
    fn unknown_ids_have_no_reference_check() {
        assert!(assess(&fig("fig01", vec!["a"], vec![])).is_none());
    }
}
