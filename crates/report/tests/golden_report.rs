//! Golden-snapshot tests for the report generator.
//!
//! A fixed `BENCH_figures.json`-shaped input (`tests/fixtures/`) is
//! rendered and the resulting markdown and SVG documents must match the
//! committed snapshots under `tests/goldens/` **byte for byte** — the
//! generator promises that the report is a pure, deterministic function of
//! the recorded data, so any diff here is an intentional format change.
//!
//! To regenerate the snapshots after such a change (consistent with the
//! figure goldens in `tests/golden_figures.rs`):
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p atrapos-report --test golden_report
//! ```
//!
//! then commit the updated files together with the change that explains
//! them.

use atrapos_report::{generate, FiguresFile};
use std::path::PathBuf;

fn fixture() -> FiguresFile {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/figures_small.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    FiguresFile::from_json(&text).unwrap_or_else(|e| panic!("bad fixture: {e}"))
}

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn update_goldens() -> bool {
    std::env::var("UPDATE_GOLDENS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn check_golden(name: &str, got: &str) {
    let path = goldens_dir().join(name);
    if update_goldens() {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             run `UPDATE_GOLDENS=1 cargo test -p atrapos-report --test golden_report` to create it",
            path.display()
        )
    });
    assert_eq!(
        want, got,
        "\n{name}: generated report diverged from the committed golden snapshot.\n\
         If this format change is intentional, regenerate with\n\
         UPDATE_GOLDENS=1 cargo test -p atrapos-report --test golden_report\n"
    );
}

#[test]
fn markdown_matches_golden() {
    let rendered = generate(&fixture(), "reports/figures");
    check_golden("REPRODUCTION.md", &rendered.markdown);
}

#[test]
fn svgs_match_goldens() {
    let rendered = generate(&fixture(), "reports/figures");
    let names: Vec<&str> = rendered.svgs.iter().map(|(n, _)| n.as_str()).collect();
    // fig07 is all-text, so it gets no chart; the other three do.
    assert_eq!(names, vec!["fig08.svg", "fig11.svg", "abl01.svg"]);
    for (name, svg) in &rendered.svgs {
        check_golden(name, svg);
    }
}

#[test]
fn generation_is_deterministic_across_calls() {
    let a = generate(&fixture(), "reports/figures");
    let b = generate(&fixture(), "reports/figures");
    assert_eq!(a.markdown, b.markdown);
    assert_eq!(a.svgs, b.svgs);
}

#[test]
fn fixture_exercises_pass_warn_and_unchecked_verdicts() {
    let rendered = generate(&fixture(), "reports/figures");
    assert!(rendered.markdown.contains("✅ pass"));
    assert!(rendered.markdown.contains("⚠️ warn"));
    assert!(rendered.markdown.contains("No reference check"));
    assert!(rendered
        .markdown
        .contains("2 of 3 reference trends reproduced"));
}
