//! Watch ATraPos adapt: run TATP, switch the transaction mix mid-run, and
//! print the throughput time series together with the repartitioning events
//! (the paper's Figure 10 in miniature).
//!
//! ```text
//! cargo run --release -p atrapos-bench --example adaptive_tatp
//! ```

use atrapos_core::{AdaptiveInterval, ControllerConfig};
use atrapos_engine::{AtraposConfig, AtraposDesign, ExecutorConfig, VirtualExecutor};
use atrapos_numa::{CostModel, Machine, Topology};
use atrapos_workloads::{Tatp, TatpConfig, TatpTxn};

fn main() {
    let machine = Machine::new(Topology::multisocket(4, 4), CostModel::westmere());
    let mut workload = Tatp::new(TatpConfig::scaled(20_000));
    workload.set_single(TatpTxn::UpdateSubscriberData);
    let config = AtraposConfig {
        controller: ControllerConfig {
            interval: AdaptiveInterval::new(0.05, 0.4, 0.10),
            ..ControllerConfig::default()
        },
        ..AtraposConfig::default()
    };
    let design = AtraposDesign::new(&machine, &workload, config);
    let mut ex = VirtualExecutor::new(
        machine,
        Box::new(design),
        Box::new(workload),
        ExecutorConfig {
            seed: 7,
            default_interval_secs: 0.05,
            time_series_bucket_secs: 0.05,
        },
    );

    let phases: [(&str, fn(&mut Tatp)); 3] = [
        ("UpdSubData", |_| {}),
        ("GetNewDest", |t| t.set_single(TatpTxn::GetNewDestination)),
        ("TATP-Mix", |t| t.set_standard_mix()),
    ];
    for (i, (label, mutate)) in phases.iter().enumerate() {
        if i > 0 {
            let tatp = ex
                .workload_mut()
                .as_any_mut()
                .and_then(|a| a.downcast_mut::<Tatp>())
                .expect("workload is TATP");
            mutate(tatp);
        }
        let stats = ex.run_for(0.25);
        println!(
            "phase {label:<11} throughput {:>9.0} TPS  repartitionings {}",
            stats.throughput_tps, stats.repartitions
        );
        for p in &stats.time_series {
            let bar = "#".repeat((p.tps / 20_000.0).round() as usize);
            println!("  t={:>5.2}s {:>9.0} TPS {bar}", p.secs, p.tps);
        }
    }
}
