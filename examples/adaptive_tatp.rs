//! Watch ATraPos adapt: run TATP, switch the transaction mix mid-run, and
//! print the throughput time series together with the repartitioning events
//! (the paper's Figure 10 in miniature).
//!
//! The experiment is a declarative [`Scenario`]: a timeline of typed
//! events.  The same timeline could be loaded from a JSON file — see the
//! `scenario_replay` example.
//!
//! ```text
//! cargo run --release -p atrapos-bench --example adaptive_tatp
//! ```

use atrapos_core::{AdaptiveInterval, ControllerConfig};
use atrapos_engine::scenario::{Scenario, ScenarioEvent};
use atrapos_engine::{AtraposConfig, DesignSpec, ExecutorConfig, VirtualExecutor};
use atrapos_numa::{CostModel, Machine, Topology};
use atrapos_workloads::{Tatp, TatpConfig, TatpTxn};

fn main() {
    let machine = Machine::new(Topology::multisocket(4, 4), CostModel::westmere());
    let mut workload = Tatp::new(TatpConfig::scaled(20_000));
    workload.set_single(TatpTxn::UpdateSubscriberData);
    let spec = DesignSpec::atrapos_with(AtraposConfig {
        controller: ControllerConfig {
            interval: AdaptiveInterval::new(0.05, 0.4, 0.10),
            ..ControllerConfig::default()
        },
        ..AtraposConfig::default()
    });
    let design = spec.build(&machine, &workload);
    let mut ex = VirtualExecutor::new(
        machine,
        design,
        Box::new(workload),
        ExecutorConfig {
            seed: 7,
            default_interval_secs: 0.05,
            time_series_bucket_secs: 0.05,
        },
    );

    let scenario = Scenario::new("adaptive-tatp", 0.75)
        .starting_as("UpdSubData")
        .at(
            0.25,
            "GetNewDest",
            ScenarioEvent::SetWorkloadPhase {
                txn: "GetNewDest".to_string(),
            },
        )
        .at(0.5, "TATP-Mix", ScenarioEvent::SetMix);

    let outcome = ex.run_scenario(&scenario).expect("scenario runs");
    for segment in &outcome.segments {
        println!(
            "phase {:<11} throughput {:>9.0} TPS  repartitionings {}",
            segment.label, segment.stats.throughput_tps, segment.stats.repartitions
        );
        for p in &segment.stats.time_series {
            let bar = "#".repeat((p.tps / 20_000.0).round() as usize);
            println!("  t={:>5.2}s {:>9.0} TPS {bar}", p.secs, p.tps);
        }
    }
}
