//! Compare the five system designs of the paper on the perfectly
//! partitionable microbenchmark, on one socket and on eight sockets.
//!
//! This is a thin alias of `atrapos sweep --workload micro --sockets 1,8`;
//! the sweep logic lives in [`atrapos_bench::shootout`].
//!
//! ```text
//! cargo run --release -p atrapos-bench --example design_shootout
//! ```
//!
//! The ten (socket count × design) measurements are independent, so they
//! fan out over the parallel experiment lab and come back in submission
//! order (set `ATRAPOS_THREADS` to pin the pool size).
//!
//! Expected shape (paper Figures 2 and 5): on one socket everything is
//! within a small factor; on eight sockets the shared-nothing configurations
//! and ATraPos scale while the centralized design and PLP collapse.

use atrapos_bench::shootout::design_sweep;
use atrapos_bench::Scale;

fn main() {
    let scale = Scale::quick();
    for fig in
        design_sweep("micro", &scale, &[1, 8], None).expect("micro is a known sweep workload")
    {
        fig.print();
    }
}
