//! Compare the five system designs of the paper on the perfectly
//! partitionable microbenchmark, on one socket and on eight sockets.
//!
//! ```text
//! cargo run --release -p atrapos-bench --example design_shootout
//! ```
//!
//! The ten (socket count × design) measurements are independent, so they
//! fan out over the parallel experiment lab and come back in submission
//! order (set `ATRAPOS_THREADS` to pin the pool size).
//!
//! Expected shape (paper Figures 2 and 5): on one socket everything is
//! within a small factor; on eight sockets the shared-nothing configurations
//! and ATraPos scale while the centralized design and PLP collapse.

use atrapos_bench::harness::{measure_jobs, measurement_job};
use atrapos_bench::{DesignSpec, Scale};
use atrapos_workloads::ReadOneRow;

fn main() {
    let scale = Scale::quick();
    let designs = [
        DesignSpec::extreme_shared_nothing(false),
        DesignSpec::coarse_shared_nothing(),
        DesignSpec::Centralized,
        DesignSpec::Plp,
        DesignSpec::atrapos(),
    ];
    let socket_counts = [1usize, 8];
    let mut jobs = Vec::new();
    for sockets in socket_counts {
        for spec in &designs {
            jobs.push(measurement_job(
                format!("{}-socket/{}", sockets, spec.label()),
                sockets,
                scale.cores_per_socket,
                spec.clone(),
                Box::new(ReadOneRow::partitionable(
                    scale.micro_rows,
                    sockets * scale.cores_per_socket,
                    1,
                )),
                scale.measure_secs,
            ));
        }
    }
    let results = measure_jobs(jobs);
    for (sockets, chunk) in socket_counts.iter().zip(results.chunks(designs.len())) {
        println!(
            "== {sockets} socket(s) × {} cores ==",
            scale.cores_per_socket
        );
        for (spec, stats) in designs.iter().zip(chunk) {
            println!(
                "  {:<24} {:>10.2} KTPS   ipc {:>5.2}   avg latency {:>7.1} µs",
                spec.label(),
                stats.throughput_tps / 1e3,
                stats.ipc,
                stats.avg_latency_us
            );
        }
        println!();
    }
}
