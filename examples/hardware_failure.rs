//! Fail a processor socket mid-run and watch ATraPos repartition the data
//! across the surviving cores (the paper's Figure 12 in miniature), compared
//! with a static configuration that keeps its old partitioning plan.
//!
//! Both variants run the *same* declarative [`Scenario`] — the failure is a
//! typed event on the timeline, not an imperative call buried in a loop.
//!
//! ```text
//! cargo run --release -p atrapos-bench --example hardware_failure
//! ```

use atrapos_core::{AdaptiveInterval, ControllerConfig};
use atrapos_engine::scenario::{Scenario, ScenarioEvent};
use atrapos_engine::{AtraposConfig, DesignSpec, ExecutorConfig, VirtualExecutor};
use atrapos_numa::{CostModel, Machine, Topology};
use atrapos_workloads::{Tatp, TatpConfig, TatpTxn};

fn scenario() -> Scenario {
    Scenario::new("one-socket-fails", 0.5)
        .starting_as("before")
        .at(0.25, "after", ScenarioEvent::FailSocket { socket: 3 })
}

fn run(adaptive: bool) {
    let machine = Machine::new(Topology::multisocket(4, 4), CostModel::westmere());
    let mut workload = Tatp::new(TatpConfig::scaled(20_000));
    workload.set_single(TatpTxn::GetSubscriberData);
    let name = if adaptive { "ATraPos" } else { "Static" };
    let spec = DesignSpec::atrapos_named(
        name,
        AtraposConfig {
            monitoring: adaptive,
            adaptive,
            controller: ControllerConfig {
                interval: AdaptiveInterval::new(0.05, 0.4, 0.10),
                ..ControllerConfig::default()
            },
            ..AtraposConfig::default()
        },
    );
    let design = spec.build(&machine, &workload);
    let mut ex = VirtualExecutor::new(
        machine,
        design,
        Box::new(workload),
        ExecutorConfig {
            seed: 11,
            default_interval_secs: 0.05,
            time_series_bucket_secs: 0.05,
        },
    );
    let outcome = ex.run_scenario(&scenario()).expect("scenario runs");
    let before = &outcome.segments[0].stats;
    let after = &outcome.segments[1].stats;
    println!(
        "{name:<8} before failure {:>9.0} TPS | after failure {:>9.0} TPS ({:+.1}%) | repartitionings {}",
        before.throughput_tps,
        after.throughput_tps,
        (after.throughput_tps / before.throughput_tps - 1.0) * 100.0,
        after.repartitions
    );
}

fn main() {
    println!("one of four sockets fails at t = 0.25 virtual seconds");
    run(false);
    run(true);
}
