//! Fail a processor socket mid-run and watch ATraPos repartition the data
//! across the surviving cores (the paper's Figure 12 in miniature), compared
//! with a static configuration that keeps its old partitioning plan.
//!
//! ```text
//! cargo run --release -p atrapos-bench --example hardware_failure
//! ```

use atrapos_core::{AdaptiveInterval, ControllerConfig};
use atrapos_engine::{AtraposConfig, AtraposDesign, ExecutorConfig, VirtualExecutor};
use atrapos_numa::{CostModel, Machine, SocketId, Topology};
use atrapos_workloads::{Tatp, TatpConfig, TatpTxn};

fn run(adaptive: bool) {
    let machine = Machine::new(Topology::multisocket(4, 4), CostModel::westmere());
    let mut workload = Tatp::new(TatpConfig::scaled(20_000));
    workload.set_single(TatpTxn::GetSubscriberData);
    let config = AtraposConfig {
        monitoring: adaptive,
        adaptive,
        controller: ControllerConfig {
            interval: AdaptiveInterval::new(0.05, 0.4, 0.10),
            ..ControllerConfig::default()
        },
        ..AtraposConfig::default()
    };
    let name = if adaptive { "ATraPos" } else { "Static" };
    let design = AtraposDesign::with_name(name, &machine, &workload, config);
    let mut ex = VirtualExecutor::new(
        machine,
        Box::new(design),
        Box::new(workload),
        ExecutorConfig {
            seed: 11,
            default_interval_secs: 0.05,
            time_series_bucket_secs: 0.05,
        },
    );
    let before = ex.run_for(0.25);
    ex.fail_socket(SocketId(3));
    let after = ex.run_for(0.25);
    println!(
        "{name:<8} before failure {:>9.0} TPS | after failure {:>9.0} TPS ({:+.1}%) | repartitionings {}",
        before.throughput_tps,
        after.throughput_tps,
        (after.throughput_tps / before.throughput_tps - 1.0) * 100.0,
        after.repartitions
    );
}

fn main() {
    println!("one of four sockets fails at t = 0.25 virtual seconds");
    run(false);
    run(true);
}
