//! Chase a moving hotspot: run YCSB-A while a compact hot window rotates
//! around the keyspace, on a static layout and on adaptive ATraPos, and
//! print both throughput time series side by side.
//!
//! The drifting skew arrives as a plain scenario event
//! (`SetSkew { Drift { .. } }`), so the same timeline works on any design
//! and could be loaded from a JSON file.
//!
//! ```text
//! cargo run --release -p atrapos-bench --example ycsb_drift
//! ```

use atrapos_core::{AdaptiveInterval, ControllerConfig, KeyDistribution};
use atrapos_engine::scenario::{Scenario, ScenarioEvent};
use atrapos_engine::sweep::{default_threads, run_sweep, SweepJob};
use atrapos_engine::{AtraposConfig, DesignSpec, ExecutorConfig};
use atrapos_numa::{CostModel, Machine, Topology};
use atrapos_workloads::{Ycsb, YcsbConfig};

fn main() {
    // One uniform warm-up phase, then the hot window (10% of the keys,
    // 90% of the accesses) starts a slow rotation around the keyspace.
    let scenario = Scenario::new("ycsb-drift", 0.75).starting_as("uniform").at(
        0.25,
        "drifting",
        ScenarioEvent::SetSkew {
            distribution: KeyDistribution::Drift {
                data_fraction: 0.1,
                access_fraction: 0.9,
                period_txns: 4_000_000,
            },
        },
    );

    let static_spec = DesignSpec::atrapos_named("static", AtraposConfig::static_atrapos());
    let adaptive_spec = DesignSpec::atrapos_with(AtraposConfig {
        monitoring: true,
        adaptive: true,
        controller: ControllerConfig {
            interval: AdaptiveInterval::new(0.05, 0.4, 0.10),
            ..ControllerConfig::default()
        },
        ..AtraposConfig::default()
    });

    let job = |name: &str, spec: DesignSpec| SweepJob {
        name: name.to_string(),
        machine: Machine::new(Topology::multisocket(4, 4), CostModel::westmere()),
        design: spec,
        workload: Box::new(Ycsb::new(
            YcsbConfig::workload_a(25_000).with_distribution(KeyDistribution::Uniform),
        )),
        scenario: scenario.clone(),
        config: ExecutorConfig {
            seed: 42,
            default_interval_secs: 0.05,
            time_series_bucket_secs: 0.05,
        },
    };

    let mut results = run_sweep(
        vec![job("static", static_spec), job("adaptive", adaptive_spec)],
        default_threads(),
    );
    let adaptive = results.remove(1).outcome.expect("adaptive run succeeds");
    let static_ = results.remove(0).outcome.expect("static run succeeds");

    println!(
        "{:>7}  {:>14}  {:>14}",
        "t (s)", "static TPS", "adaptive TPS"
    );
    let s = static_.time_series();
    let a = adaptive.time_series();
    for (sp, ap) in s.iter().zip(a.iter()) {
        let marker = if ap.tps > sp.tps {
            "  <- adaptive ahead"
        } else {
            ""
        };
        println!(
            "{:>7.2}  {:>14.0}  {:>14.0}{marker}",
            sp.secs, sp.tps, ap.tps
        );
    }
    println!(
        "totals: static {} committed, adaptive {} committed \
         ({} repartitionings)",
        static_.total_committed(),
        adaptive.total_committed(),
        adaptive.total_repartitions(),
    );
}
