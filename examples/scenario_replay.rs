//! Scenarios are data: load a complete experiment — design spec plus event
//! timeline — from a JSON file, run it, and print per-segment statistics.
//!
//! This is a thin alias of `atrapos replay`; the experiment logic lives in
//! [`atrapos_bench::replay`].
//!
//! ```text
//! cargo run --release -p atrapos-bench --example scenario_replay
//! cargo run --release -p atrapos-bench --example scenario_replay -- path/to/experiment.json
//! cargo run --release -p atrapos-bench --example scenario_replay -- --emit-sample
//! ```
//!
//! The default replay file lives at `examples/scenarios/adaptive_tatp.json`;
//! `--emit-sample` prints that file's canonical contents (useful as a
//! starting point for new experiments).

use atrapos_bench::replay;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--emit-sample") {
        println!("{}", serde::json::to_string_pretty(&replay::sample()));
        return;
    }
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| replay::DEFAULT_REPLAY_PATH.to_string());
    let replay_file = replay::ReplayFile::load(&path).unwrap_or_else(|e| panic!("{e}"));
    let outcome = replay_file.run().unwrap_or_else(|e| panic!("{e}"));
    replay::print_outcome(&replay_file, &outcome);
}
