//! Scenarios are data: load a complete experiment — design spec plus event
//! timeline — from a JSON file, run it, and print per-segment statistics.
//!
//! ```text
//! cargo run --release -p atrapos-bench --example scenario_replay
//! cargo run --release -p atrapos-bench --example scenario_replay -- path/to/experiment.json
//! cargo run --release -p atrapos-bench --example scenario_replay -- --emit-sample
//! ```
//!
//! The default replay file lives at `examples/scenarios/adaptive_tatp.json`
//! and reproduces the `adaptive_tatp` example's timeline; `--emit-sample`
//! prints that file's canonical contents (useful as a starting point for
//! new experiments).

use atrapos_engine::scenario::Scenario;
use atrapos_engine::{DesignSpec, ExecutorConfig, VirtualExecutor};
use atrapos_numa::{CostModel, Machine, Topology};
use atrapos_workloads::{Tatp, TatpConfig, TatpTxn};
use serde::{Deserialize, Serialize};

/// A complete, self-contained experiment description.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ReplayFile {
    /// Simulated machine: sockets × cores per socket.
    sockets: usize,
    /// Cores per socket.
    cores_per_socket: usize,
    /// The design to run (serializable spec, no code).
    design: DesignSpec,
    /// TATP dataset size.
    tatp_subscribers: i64,
    /// Transaction type the workload starts on.
    initial_txn: String,
    /// Workload-generator seed.
    seed: u64,
    /// Default monitoring interval in virtual seconds.
    interval_secs: f64,
    /// The event timeline.
    scenario: Scenario,
}

fn sample() -> ReplayFile {
    use atrapos_core::{AdaptiveInterval, ControllerConfig};
    use atrapos_engine::scenario::ScenarioEvent;
    use atrapos_engine::AtraposConfig;
    ReplayFile {
        sockets: 4,
        cores_per_socket: 4,
        design: DesignSpec::atrapos_with(AtraposConfig {
            controller: ControllerConfig {
                interval: AdaptiveInterval::new(0.05, 0.4, 0.10),
                ..ControllerConfig::default()
            },
            ..AtraposConfig::default()
        }),
        tatp_subscribers: 20_000,
        initial_txn: "UpdSubData".to_string(),
        seed: 7,
        interval_secs: 0.05,
        scenario: Scenario::new("adaptive-tatp-replay", 0.75)
            .starting_as("UpdSubData")
            .at(
                0.25,
                "GetNewDest",
                ScenarioEvent::SetWorkloadPhase {
                    txn: "GetNewDest".to_string(),
                },
            )
            .at(0.5, "TATP-Mix", ScenarioEvent::SetMix),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--emit-sample") {
        println!("{}", serde::json::to_string_pretty(&sample()));
        return;
    }
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "examples/scenarios/adaptive_tatp.json".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read replay file '{path}': {e}"));
    let replay: ReplayFile = serde::json::from_str(&text)
        .unwrap_or_else(|e| panic!("cannot parse replay file '{path}': {e}"));
    replay
        .scenario
        .validate()
        .unwrap_or_else(|e| panic!("invalid scenario in '{path}': {e}"));

    let machine = Machine::new(
        Topology::multisocket(replay.sockets, replay.cores_per_socket),
        CostModel::westmere(),
    );
    let mut workload = Tatp::new(TatpConfig::scaled(replay.tatp_subscribers));
    let initial = TatpTxn::from_label(&replay.initial_txn)
        .unwrap_or_else(|| panic!("unknown initial transaction '{}'", replay.initial_txn));
    workload.set_single(initial);
    let design = replay.design.build(&machine, &workload);
    let mut ex = VirtualExecutor::new(
        machine,
        design,
        Box::new(workload),
        ExecutorConfig {
            seed: replay.seed,
            default_interval_secs: replay.interval_secs,
            time_series_bucket_secs: replay.interval_secs,
        },
    );

    println!(
        "replaying '{}' ({} events over {:.2} virtual s) against {}",
        replay.scenario.name,
        replay.scenario.events.len(),
        replay.scenario.duration_secs,
        replay.design.label(),
    );
    let outcome = ex.run_scenario(&replay.scenario).expect("scenario runs");
    for segment in &outcome.segments {
        println!(
            "  segment {:<12} t={:>5.2}s  {:>9.0} TPS  latency {:>6.1} µs  repartitionings {}",
            segment.label,
            segment.start_secs,
            segment.stats.throughput_tps,
            segment.stats.avg_latency_us,
            segment.stats.repartitions,
        );
    }
    println!(
        "total committed {}  design stats {:?}",
        outcome.total_committed(),
        outcome.design_stats
    );
}
