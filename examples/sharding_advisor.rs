//! Sharding advisor: apply the ATraPos cost model to a coarse-grained
//! shared-nothing deployment (the paper's §VII future-work extension).
//!
//! A two-table workload whose cross-table correlation is *shifted* — every
//! transaction reads `A[k]` and updates `B[(k + N/2) % N]` — is the worst
//! case for classic range sharding: almost every transaction spans two
//! instances and must run two-phase commit.  This example collects an
//! offline workload trace, asks the advisor for a better sharding plan, and
//! measures both plans end-to-end on the simulated 4-socket machine.
//!
//! ```text
//! cargo run --release -p atrapos-bench --example sharding_advisor
//! ```

use atrapos_bench::figures::ablation::sample_shifted_trace;
use atrapos_core::{advise_sharding, evaluate_sharding, KeyDomain, ShardingConfig, ShardingPlan};
use atrapos_storage::TableId;

fn main() {
    let rows = 40_000i64;
    let instances = 4;
    let sub_per_table = instances * 8;
    let domains = vec![
        (TableId(0), KeyDomain::new(0, rows)),
        (TableId(1), KeyDomain::new(0, rows)),
    ];

    // 1. Collect an offline trace of the workload: per-sub-partition load
    //    plus which sub-partitions are co-accessed by the same transaction.
    let trace = sample_shifted_trace(rows, sub_per_table, 5_000);
    println!(
        "trace: {} transactions, {} distinct co-access pairs",
        trace.transactions,
        trace.num_sync_pairs()
    );

    // 2. Score the classic range sharding (what the coarse shared-nothing
    //    deployment of §III uses) against the advisor's plan.
    let cfg = ShardingConfig::default();
    let range = ShardingPlan::range(&domains, sub_per_table, instances, instances);
    let advised = advise_sharding(&domains, sub_per_table, instances, instances, &trace, &cfg);

    for (label, plan) in [("range sharding", &range), ("advisor sharding", &advised)] {
        let cost = evaluate_sharding(plan, &trace);
        println!(
            "{label:18}: {:6.0} distributed co-accesses ({:.0} cross-machine), load imbalance {:.0}, combined cost {:.0}",
            cost.total_distributed(),
            cost.remote_distributed,
            cost.load_imbalance,
            cost.combined(&cfg),
        );
    }

    // 3. How much data would the migration move?  Physical movement is the
    //    dominant repartitioning cost in shared-nothing systems (§VII).
    let bytes_per_sub: std::collections::BTreeMap<TableId, u64> = domains
        .iter()
        .map(|&(t, d)| (t, (d.width() as u64 / sub_per_table as u64) * 16))
        .collect();
    let moved = atrapos_core::estimate_migration_bytes(&range, &advised, &bytes_per_sub);
    println!(
        "migrating range → advisor moves ≈ {:.1} MB of records",
        moved as f64 / 1e6
    );

    println!();
    println!(
        "run `cargo run --release --bin atrapos -- figures abl04` to measure both plans end-to-end"
    );
}
