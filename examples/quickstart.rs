//! Quickstart: simulate an 8-socket machine, run the TATP mix on ATraPos,
//! and print the headline metrics.
//!
//! ```text
//! cargo run --release -p atrapos-bench --example quickstart
//! ```

use atrapos_engine::{AtraposConfig, AtraposDesign, ExecutorConfig, VirtualExecutor};
use atrapos_numa::{CostModel, Machine, Topology};
use atrapos_workloads::{Tatp, TatpConfig};

fn main() {
    // 1. Describe the hardware: the paper's 8-socket × 10-core box.
    let machine = Machine::new(Topology::westmere_ex_8x10(), CostModel::westmere());
    println!(
        "machine: {} sockets × {} cores, diameter {} hops",
        machine.topology.num_sockets(),
        machine.topology.cores_of(atrapos_numa::SocketId(0)).len(),
        machine.topology.diameter()
    );

    // 2. Pick a workload: TATP with a scaled-down subscriber count.
    let workload = Tatp::new(TatpConfig::scaled(50_000));

    // 3. Build the ATraPos design (NUMA-aware structures + adaptive
    //    partitioning) and a closed-loop executor with one client per core.
    let design = AtraposDesign::new(&machine, &workload, AtraposConfig::default());
    let mut executor = VirtualExecutor::new(
        machine,
        Box::new(design),
        Box::new(workload),
        ExecutorConfig::default(),
    );

    // 4. Run for a tenth of a virtual second and look at the results.
    let stats = executor.run_for(0.1);
    println!("committed transactions : {}", stats.committed);
    println!("throughput             : {:.0} TPS", stats.throughput_tps);
    println!("average latency        : {:.1} µs", stats.avg_latency_us);
    println!("machine IPC            : {:.2}", stats.ipc);
    println!("QPI/IMC traffic ratio  : {:.2}", stats.qpi_imc_ratio);
    println!("repartitionings        : {}", stats.repartitions);
}
