//! The scenario layer end to end: serde round-trips for the declarative
//! experiment vocabulary (property-based), and equivalence between a
//! scenario-driven run and the hand-rolled phase loop it replaced.

use atrapos_core::{AdaptiveInterval, ControllerConfig, KeyDistribution};
use atrapos_engine::scenario::{Scenario, ScenarioEvent, TimedEvent};
use atrapos_engine::{
    ArrivalProcess, AtraposConfig, DesignSpec, ExecutorConfig, VirtualExecutor, WorkloadChange,
};
use atrapos_numa::{CostModel, Machine, Topology};
use atrapos_workloads::{Tatp, TatpConfig, TatpTxn};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Serde round-trips (property-based)
// ---------------------------------------------------------------------

fn distribution_strategy() -> impl Strategy<Value = KeyDistribution> {
    prop_oneof![
        1 => (0u32..1).prop_map(|_| KeyDistribution::Uniform),
        2 => (0.05f64..0.95, 0.05f64..0.95).prop_map(|(d, a)| KeyDistribution::Hotspot {
            data_fraction: d,
            access_fraction: a,
        }),
        2 => (0.0f64..1.2).prop_map(|theta| KeyDistribution::Zipfian { theta }),
        2 => (0.05f64..0.5, 0.05f64..0.95, 100u64..1_000_000).prop_map(|(d, a, p)| {
            KeyDistribution::Drift {
                data_fraction: d,
                access_fraction: a,
                period_txns: p,
            }
        }),
    ]
}

fn change_strategy() -> impl Strategy<Value = WorkloadChange> {
    let txn = prop::sample::select(vec![
        "GetSubData".to_string(),
        "GetNewDest".to_string(),
        "UpdSubData".to_string(),
        "NewOrder".to_string(),
        "RMW".to_string(),
    ]);
    prop_oneof![
        2 => txn.prop_map(|txn| WorkloadChange::SingleTransaction { txn }),
        1 => (0u32..1).prop_map(|_| WorkloadChange::StandardMix),
        2 => distribution_strategy()
            .prop_map(|distribution| WorkloadChange::Distribution { distribution }),
        1 => (0u32..=100).prop_map(|percent| WorkloadChange::MultiSitePercent { percent }),
        1 => (0.0f64..1.2).prop_map(|theta| WorkloadChange::ZipfianTheta { theta }),
        1 => prop::sample::select(vec!["A", "B", "C", "D", "E", "F"])
            .prop_map(|name| WorkloadChange::NamedMix { name: name.to_string() }),
    ]
}

fn arrival_process_strategy() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        2 => (100.0f64..200_000.0).prop_map(|rate_tps| ArrivalProcess::Poisson { rate_tps }),
        1 => (100.0f64..50_000.0, 1.1f64..4.0, 0.01f64..0.5, 0.05f64..0.95).prop_map(
            |(base_tps, mult, period_secs, burst_fraction)| ArrivalProcess::Burst {
                base_tps,
                burst_tps: base_tps * mult,
                period_secs,
                burst_fraction,
            }
        ),
        1 => (100.0f64..50_000.0, 0.0f64..0.99, 0.01f64..0.5).prop_map(
            |(base_tps, amplitude, period_secs)| ArrivalProcess::Diurnal {
                base_tps,
                amplitude,
                period_secs,
            }
        ),
    ]
}

fn event_strategy() -> impl Strategy<Value = ScenarioEvent> {
    prop_oneof![
        2 => change_strategy().prop_map(|change| ScenarioEvent::ChangeWorkload { change }),
        2 => prop::sample::select(vec!["GetNewDest".to_string(), "UpdSubData".to_string()])
            .prop_map(|txn| ScenarioEvent::SetWorkloadPhase { txn }),
        1 => (0u32..1).prop_map(|_| ScenarioEvent::SetMix),
        2 => distribution_strategy()
            .prop_map(|distribution| ScenarioEvent::SetSkew { distribution }),
        1 => (0.0f64..1.2).prop_map(|theta| ScenarioEvent::SetZipfTheta { theta }),
        1 => prop::sample::select(vec!["A", "B", "C", "D", "E", "F"])
            .prop_map(|name| ScenarioEvent::SetNamedMix { name: name.to_string() }),
        1 => (0u16..8).prop_map(|socket| ScenarioEvent::FailSocket { socket }),
        1 => (0u16..8).prop_map(|socket| ScenarioEvent::RestoreSocket { socket }),
        1 => (0.001f64..0.5).prop_map(|secs| ScenarioEvent::SetInterval { secs }),
        1 => (0u32..1).prop_map(|_| ScenarioEvent::Measure),
        1 => (100.0f64..200_000.0).prop_map(|rate_tps| ScenarioEvent::SetArrivalRate { rate_tps }),
        1 => (1u64..10_000).prop_map(|bound| ScenarioEvent::SetAdmissionBound { bound }),
        1 => arrival_process_strategy()
            .prop_map(|process| ScenarioEvent::SetArrivalProcess { process }),
    ]
}

fn ycsb_config_strategy() -> impl Strategy<Value = atrapos_workloads::YcsbConfig> {
    (
        prop::sample::select(vec!["A", "B", "C", "D", "E", "F"]),
        100i64..100_000,
        distribution_strategy(),
    )
        .prop_map(|(name, records, distribution)| {
            atrapos_workloads::YcsbConfig::named(name, records)
                .expect("core mix")
                .with_distribution(distribution)
        })
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        prop::collection::vec((0.0f64..1.0, event_strategy(), any::<bool>()), 0..8),
        0.05f64..2.0,
    )
        .prop_map(|(raw, extra)| {
            // Sort offsets so the timeline is valid by construction.
            let mut raw = raw;
            raw.sort_by(|a, b| a.0.total_cmp(&b.0));
            let duration = 1.0 + extra;
            let events = raw
                .into_iter()
                .enumerate()
                .map(|(i, (at_secs, event, labelled))| TimedEvent {
                    at_secs,
                    label: labelled.then(|| format!("phase{i}")),
                    event,
                })
                .collect();
            Scenario {
                name: "prop-scenario".to_string(),
                initial_label: "start".to_string(),
                duration_secs: duration,
                events,
            }
        })
}

proptest! {
    /// Every `WorkloadChange` survives a JSON round-trip bit-exactly.
    #[test]
    fn workload_changes_round_trip(change in change_strategy()) {
        let text = serde::json::to_string(&change);
        let back: WorkloadChange = serde::json::from_str(&text).unwrap();
        prop_assert_eq!(back, change);
    }

    /// Every `YcsbConfig` (core mixes A–F at arbitrary sizes and
    /// distributions) survives a JSON round-trip bit-exactly.
    #[test]
    fn ycsb_configs_round_trip(config in ycsb_config_strategy()) {
        let text = serde::json::to_string(&config);
        let back: atrapos_workloads::YcsbConfig = serde::json::from_str(&text).unwrap();
        prop_assert_eq!(back, config);
    }

    /// Every generated scenario is valid and survives a JSON round-trip.
    #[test]
    fn scenarios_round_trip(scenario in scenario_strategy()) {
        prop_assert!(scenario.validate().is_ok());
        let json = scenario.to_json();
        let back = Scenario::from_json(&json).unwrap();
        prop_assert_eq!(back, scenario);
    }

    /// Non-positive or non-finite arrival rates — and zero admission
    /// bounds — are rejected by `Scenario::validate` wherever they sit on
    /// the timeline.
    #[test]
    fn malformed_arrival_events_are_rejected_by_validation(
        bad_rate in prop_oneof![
            Just(0.0f64),
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            -1e9f64..0.0,
        ],
        at in 0.0f64..0.5,
    ) {
        let rate = Scenario::new("bad-rate", 1.0)
            .at_unlabelled(at, ScenarioEvent::SetArrivalRate { rate_tps: bad_rate });
        prop_assert!(rate.validate().is_err());
        let bound = Scenario::new("bad-bound", 1.0)
            .at_unlabelled(at, ScenarioEvent::SetAdmissionBound { bound: 0 });
        prop_assert!(bound.validate().is_err());
    }

    /// Malformed arrival processes (diurnal amplitude outside [0, 1),
    /// burst fraction outside (0, 1)) are rejected through
    /// `SetArrivalProcess` validation.
    #[test]
    fn malformed_arrival_processes_are_rejected_by_validation(
        amplitude in 1.0f64..3.0,
        bad_fraction in prop_oneof![Just(0.0f64), 1.0f64..2.0],
        base_tps in 100.0f64..10_000.0,
    ) {
        let diurnal = Scenario::new("bad-diurnal", 1.0).at_unlabelled(
            0.0,
            ScenarioEvent::SetArrivalProcess {
                process: ArrivalProcess::Diurnal {
                    base_tps,
                    amplitude,
                    period_secs: 0.1,
                },
            },
        );
        prop_assert!(diurnal.validate().is_err());
        let burst = Scenario::new("bad-burst", 1.0).at_unlabelled(
            0.0,
            ScenarioEvent::SetArrivalProcess {
                process: ArrivalProcess::Burst {
                    base_tps,
                    burst_tps: 2.0 * base_tps,
                    period_secs: 0.1,
                    burst_fraction: bad_fraction,
                },
            },
        );
        prop_assert!(burst.validate().is_err());
    }

    /// Design specs re-serialize to identical JSON after a round-trip
    /// (AtraposConfig has no PartialEq, so the text form is the witness).
    #[test]
    fn design_specs_round_trip(
        locking in any::<bool>(),
        monitoring in any::<bool>(),
        adaptive in any::<bool>(),
        sub_per in 1usize..40,
        which in 0usize..4,
    ) {
        let spec = match which {
            0 => DesignSpec::Centralized,
            1 => DesignSpec::extreme_shared_nothing(locking),
            2 => DesignSpec::Plp,
            _ => DesignSpec::atrapos_with(AtraposConfig {
                monitoring,
                adaptive: monitoring && adaptive,
                sub_per_partition: sub_per,
                ..AtraposConfig::default()
            }),
        };
        let text = serde::json::to_string(&spec);
        let back: DesignSpec = serde::json::from_str(&text).unwrap();
        prop_assert_eq!(serde::json::to_string(&back), text);
        prop_assert_eq!(back.label(), spec.label());
    }
}

// ---------------------------------------------------------------------
// Scenario-driven vs. hand-rolled equivalence
// ---------------------------------------------------------------------

/// A reduced Figure-10 setup: small TATP, short phases, but still several
/// monitoring intervals per phase so the adaptation behaviour is exercised.
const PHASE_SECS: f64 = 0.03;
const INTERVAL_MIN_SECS: f64 = 0.005;
const INTERVAL_MAX_SECS: f64 = 0.04;

fn tatp_executor(adaptive: bool) -> VirtualExecutor {
    let machine = Machine::new(Topology::multisocket(4, 2), CostModel::westmere());
    let mut workload = Tatp::new(TatpConfig::scaled(4_000));
    workload.set_single(TatpTxn::UpdateSubscriberData);
    let spec = DesignSpec::atrapos_named(
        if adaptive { "atrapos" } else { "static" },
        AtraposConfig {
            monitoring: adaptive,
            adaptive,
            controller: ControllerConfig {
                interval: AdaptiveInterval::new(INTERVAL_MIN_SECS, INTERVAL_MAX_SECS, 0.10),
                ..ControllerConfig::default()
            },
            ..AtraposConfig::default()
        },
    );
    let design = spec.build(&machine, &workload);
    VirtualExecutor::new(
        machine,
        design,
        Box::new(workload),
        ExecutorConfig {
            seed: 42,
            default_interval_secs: INTERVAL_MIN_SECS,
            time_series_bucket_secs: INTERVAL_MIN_SECS,
        },
    )
}

fn fig10_like_scenario(phase_secs: f64) -> Scenario {
    Scenario::new("equivalence", 3.0 * phase_secs)
        .starting_as("UpdSubData")
        .at(
            phase_secs,
            "GetNewDest",
            ScenarioEvent::SetWorkloadPhase {
                txn: "GetNewDest".to_string(),
            },
        )
        .at(2.0 * phase_secs, "TATP-Mix", ScenarioEvent::SetMix)
}

/// The scenario runner is a pure reformulation of the old hand-rolled phase
/// loop: same segments, same reconfigurations, same committed counts.
#[test]
fn scenario_run_matches_hand_rolled_loop() {
    let phase = PHASE_SECS;
    let outcome = tatp_executor(true)
        .run_scenario(&fig10_like_scenario(phase))
        .expect("scenario runs");

    // The hand-rolled loop the scenario API replaced.
    let mut manual = tatp_executor(true);
    let mut manual_segments = Vec::new();
    manual_segments.push(manual.run_for(phase));
    manual
        .reconfigure_workload(&WorkloadChange::SingleTransaction {
            txn: "GetNewDest".to_string(),
        })
        .unwrap();
    manual_segments.push(manual.run_for(phase));
    manual
        .reconfigure_workload(&WorkloadChange::StandardMix)
        .unwrap();
    manual_segments.push(manual.run_for(phase));

    assert_eq!(outcome.segments.len(), manual_segments.len());
    for (s, m) in outcome.segments.iter().zip(&manual_segments) {
        assert_eq!(s.stats.committed, m.committed, "segment '{}'", s.label);
        assert_eq!(s.stats.aborted, m.aborted, "segment '{}'", s.label);
        assert_eq!(
            s.stats.repartitions, m.repartitions,
            "segment '{}'",
            s.label
        );
    }
}

/// The paper's Figure 10 claim at test scale: after each workload switch
/// the adaptive system keeps committing and ends at least as fast as the
/// static configuration over the post-switch phases.
#[test]
fn adaptive_tatp_recovers_after_phase_change() {
    let phase = PHASE_SECS;
    let scenario = fig10_like_scenario(phase);
    let adaptive = tatp_executor(true).run_scenario(&scenario).unwrap();
    let static_ = tatp_executor(false).run_scenario(&scenario).unwrap();

    for segment in &adaptive.segments {
        assert!(
            segment.stats.committed > 0,
            "adaptive run stalled in segment '{}'",
            segment.label
        );
    }
    let post_switch = |o: &atrapos_engine::ScenarioOutcome| {
        o.segments[1].stats.committed + o.segments[2].stats.committed
    };
    let a = post_switch(&adaptive);
    let s = post_switch(&static_);
    assert!(
        a as f64 >= s as f64 * 0.95,
        "adaptive ({a}) should not trail static ({s}) after the switches"
    );
}

/// The shipped replay file parses and its timeline is valid — scenarios
/// really are data on disk.
#[test]
fn shipped_replay_scenario_parses() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/scenarios/adaptive_tatp.json"
    );
    let text = std::fs::read_to_string(path).expect("sample replay file exists");
    let value = serde::json::parse(&text).expect("sample is valid JSON");
    let scenario: Scenario =
        serde::de::Deserialize::from_value(value.get("scenario").expect("has scenario"))
            .expect("scenario parses");
    scenario.validate().expect("scenario is valid");
    assert_eq!(scenario.events.len(), 2);
    let design: DesignSpec =
        serde::de::Deserialize::from_value(value.get("design").expect("has design"))
            .expect("design parses");
    assert_eq!(design.label(), "ATraPos");
}

// ---------------------------------------------------------------------
// Declarative workload specs are data too
// ---------------------------------------------------------------------

/// Random valid `WorkloadSpec`s: the two shipped transcriptions with
/// randomized sizes, weights, distributions, and sync payloads.
fn workload_spec_strategy() -> impl Strategy<Value = atrapos_workloads::WorkloadSpec> {
    use atrapos_workloads::spec::{simple_ab, ycsb_a, ArgDef};
    prop_oneof![
        (
            100i64..100_000,
            0.1f64..5.0,
            0.1f64..5.0,
            distribution_strategy()
        )
            .prop_map(|(records, w_read, w_update, dist)| {
                let mut spec = ycsb_a(records);
                spec.templates[0].weight = w_read;
                spec.templates[1].weight = w_update;
                if let ArgDef::Key { distribution, .. } = &mut spec.templates[0].args[0] {
                    *distribution = dist;
                }
                spec
            }),
        (100i64..50_000, prop::option::of(1u64..4_096)).prop_map(|(rows, sync)| {
            let mut spec = simple_ab(rows);
            spec.templates[0].phases[0].sync_bytes = sync;
            spec
        }),
    ]
}

proptest! {
    /// Every generated `WorkloadSpec` is valid and survives both the
    /// pretty (`to_json`/`from_json`) and the compact JSON round-trip
    /// bit-exactly.
    #[test]
    fn workload_specs_round_trip(spec in workload_spec_strategy()) {
        prop_assert!(spec.validate().is_ok());
        let back = atrapos_workloads::WorkloadSpec::from_json(&spec.to_json()).unwrap();
        prop_assert_eq!(&back, &spec);
        let compact = serde::json::to_string(&spec);
        let back: atrapos_workloads::WorkloadSpec = serde::json::from_str(&compact).unwrap();
        prop_assert_eq!(back, spec);
    }

    /// Every generated `WorkloadSpec` survives the `serde::Value`
    /// round-trip (the path replay-style embeddings use).
    #[test]
    fn workload_specs_round_trip_through_values(spec in workload_spec_strategy()) {
        use serde::de::Deserialize;
        use serde::ser::Serialize;
        let value = spec.to_value();
        let back = atrapos_workloads::WorkloadSpec::from_value(&value).unwrap();
        prop_assert_eq!(back, spec);
    }
}

/// Malformed spec JSON is rejected at load with a typed parse error, not
/// a panic — the vocabulary itself is the first validation layer.
#[test]
fn malformed_spec_json_is_rejected_with_a_typed_error() {
    let err = atrapos_workloads::WorkloadSpec::from_json("{\"name\": \"x\"}").unwrap_err();
    assert!(matches!(err, atrapos_workloads::SpecError::Parse { .. }));
}
