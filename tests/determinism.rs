//! Determinism regression test.
//!
//! The virtual-time simulator promises bit-for-bit reproducibility: the
//! same experiment description (design spec + workload seed + scenario
//! timeline) must yield byte-identical serialized segment reports every
//! time it runs.  This test loads the `scenario_replay` example's shipped
//! JSON experiment (`examples/scenarios/adaptive_tatp.json`), executes it
//! twice in one process, and compares the serialized outcomes.
//!
//! The experiment is scaled down (fewer subscribers, shorter timeline)
//! so the test also runs quickly in debug builds; the *structure* —
//! design spec, event sequence, relative offsets — is exactly the shipped
//! file's.

use atrapos_engine::scenario::ScenarioOutcome;
use atrapos_engine::{DesignSpec, ExecutorConfig, Scenario, VirtualExecutor};
use atrapos_numa::{CostModel, Machine, Topology};
use atrapos_workloads::{Tatp, TatpConfig, TatpTxn};
use serde::Deserialize;
use std::path::PathBuf;

/// Mirror of the `scenario_replay` example's replay-file schema (the
/// example keeps its own copy; both must parse the same shipped JSON).
#[derive(Debug, Clone, Deserialize)]
struct ReplayFile {
    sockets: usize,
    cores_per_socket: usize,
    design: DesignSpec,
    tatp_subscribers: i64,
    initial_txn: String,
    seed: u64,
    interval_secs: f64,
    scenario: Scenario,
}

fn shipped_replay() -> ReplayFile {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/scenarios/adaptive_tatp.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde::json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

/// Shrink the experiment for test budgets while keeping its structure.
fn shrink(replay: &mut ReplayFile, factor: f64) {
    replay.tatp_subscribers = (replay.tatp_subscribers / 10).max(1_000);
    replay.interval_secs /= factor;
    replay.scenario.duration_secs /= factor;
    for e in &mut replay.scenario.events {
        e.at_secs /= factor;
    }
}

fn run_once(replay: &ReplayFile) -> ScenarioOutcome {
    let machine = Machine::new(
        Topology::multisocket(replay.sockets, replay.cores_per_socket),
        CostModel::westmere(),
    );
    let mut workload = Tatp::new(TatpConfig::scaled(replay.tatp_subscribers));
    let initial = TatpTxn::from_label(&replay.initial_txn)
        .unwrap_or_else(|| panic!("unknown initial transaction '{}'", replay.initial_txn));
    workload.set_single(initial);
    let design = replay.design.build(&machine, &workload);
    let mut ex = VirtualExecutor::new(
        machine,
        design,
        Box::new(workload),
        ExecutorConfig {
            seed: replay.seed,
            default_interval_secs: replay.interval_secs,
            time_series_bucket_secs: replay.interval_secs,
        },
    );
    ex.run_scenario(&replay.scenario).expect("scenario runs")
}

#[test]
fn replay_experiment_is_byte_identical_across_runs() {
    let mut replay = shipped_replay();
    replay
        .scenario
        .validate()
        .expect("shipped scenario is valid");
    shrink(&mut replay, 5.0);

    let first = run_once(&replay);
    let second = run_once(&replay);

    let a = serde::json::to_string_pretty(&first);
    let b = serde::json::to_string_pretty(&second);
    assert!(
        first.total_committed() > 0,
        "determinism run committed nothing — the shrunken scale is broken"
    );
    assert_eq!(
        a, b,
        "two in-process runs of the same replay experiment serialized differently"
    );
}
