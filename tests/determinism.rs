//! Determinism regression test.
//!
//! The virtual-time simulator promises bit-for-bit reproducibility: the
//! same experiment description (design spec + workload seed + scenario
//! timeline) must yield byte-identical serialized segment reports every
//! time it runs.  This test loads the shipped JSON experiment
//! (`examples/scenarios/adaptive_tatp.json`) through the same
//! [`atrapos_bench::replay::ReplayFile`] loader `atrapos replay` uses,
//! executes it twice in one process, and compares the serialized outcomes.
//!
//! The experiment is scaled down (fewer subscribers, shorter timeline)
//! so the test also runs quickly in debug builds; the *structure* —
//! design spec, event sequence, relative offsets — is exactly the shipped
//! file's.

use atrapos_bench::replay::ReplayFile;
use std::path::PathBuf;

fn shipped_replay() -> ReplayFile {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/scenarios/adaptive_tatp.json");
    ReplayFile::load(&path).unwrap_or_else(|e| panic!("{e}"))
}

/// Shrink the experiment for test budgets while keeping its structure.
fn shrink(replay: &mut ReplayFile, factor: f64) {
    replay.tatp_subscribers = (replay.tatp_subscribers / 10).max(1_000);
    replay.interval_secs /= factor;
    replay.scenario.duration_secs /= factor;
    for e in &mut replay.scenario.events {
        e.at_secs /= factor;
    }
}

/// The adaptive ycsb02 variant (drifting hotspot, stateful sampler,
/// monotone insert cursor) twice in one process must serialize byte-
/// identically — the drift counter and cursor are owned per job, so a
/// rerun starts from the exact same state.
#[test]
fn ycsb_drift_experiment_is_byte_identical_across_runs() {
    use atrapos_bench::figures::ycsb02_jobs;
    use atrapos_bench::Scale;

    let scale = {
        let mut s = Scale::quick();
        s.ycsb_records = 4_000;
        s.phase_secs = 0.01;
        s.interval_min_secs = 0.002;
        s.interval_max_secs = 0.008;
        s
    };
    let run_adaptive = || {
        let job = ycsb02_jobs(&scale)
            .into_iter()
            .find(|j| j.name.ends_with("ATraPos"))
            .expect("the adaptive variant is in the job list");
        job.run().expect("ycsb02 scenario runs")
    };
    let first = run_adaptive();
    let second = run_adaptive();
    assert!(first.total_committed() > 0);
    assert_eq!(
        serde::json::to_string_pretty(&first),
        serde::json::to_string_pretty(&second),
        "two in-process runs of the ycsb02 adaptive experiment serialized differently"
    );
}

/// The open-loop overload02 variant (Poisson arrivals, admission queue,
/// burst timeline) twice in one process must serialize byte-identically —
/// the arrival RNG is seeded from the job's config, so a rerun replays
/// the exact same arrival sequence.
#[test]
fn open_loop_experiment_is_byte_identical_across_runs() {
    use atrapos_bench::figures::overload02_jobs;
    use atrapos_bench::Scale;

    let scale = {
        let mut s = Scale::quick();
        s.ycsb_records = 4_000;
        s.measure_secs = 0.004;
        s.phase_secs = 0.004;
        s.interval_min_secs = 0.002;
        s.interval_max_secs = 0.008;
        s
    };
    let run_open_loop = || {
        let job = overload02_jobs(&scale)
            .into_iter()
            .find(|j| j.name.ends_with("ATraPos"))
            .expect("the adaptive variant is in the job list");
        job.run().expect("overload02 scenario runs")
    };
    let first = run_open_loop();
    let second = run_open_loop();
    assert!(first.total_committed() > 0);
    assert!(
        first
            .segments
            .iter()
            .all(|s| s.stats.open_loop && s.stats.offered > 0),
        "every overload02 segment serves open loop"
    );
    assert_eq!(
        serde::json::to_string_pretty(&first),
        serde::json::to_string_pretty(&second),
        "two in-process runs of the overload02 open-loop experiment serialized differently"
    );
}

#[test]
fn replay_experiment_is_byte_identical_across_runs() {
    let mut replay = shipped_replay();
    shrink(&mut replay, 5.0);

    let first = replay.run().expect("scenario runs");
    let second = replay.run().expect("scenario runs");

    let a = serde::json::to_string_pretty(&first);
    let b = serde::json::to_string_pretty(&second);
    assert!(
        first.total_committed() > 0,
        "determinism run committed nothing — the shrunken scale is broken"
    );
    assert_eq!(
        a, b,
        "two in-process runs of the same replay experiment serialized differently"
    );
}

/// A spec-driven job (declarative workload compiled from a shipped
/// `examples/specs` file, including its stateful insert cursor and
/// adaptive design) twice in one process must serialize byte-identically
/// — compiling the spec twice yields fully independent generator state.
#[test]
fn spec_driven_experiment_is_byte_identical_across_runs() {
    use atrapos_bench::figures::{shipped_spec, spec_job, ycsb_designs};
    use atrapos_bench::Scale;
    use atrapos_engine::scenario::Scenario;

    let scale = {
        let mut s = Scale::quick();
        s.ycsb_records = 4_000;
        s.measure_secs = 0.004;
        s.interval_min_secs = 0.002;
        s.interval_max_secs = 0.008;
        s
    };
    let spec = shipped_spec("scan_write.json").unwrap_or_else(|e| panic!("{e}"));
    let run = || {
        let (label, design) = ycsb_designs(&scale)
            .into_iter()
            .find(|(label, _)| *label == "ATraPos")
            .expect("the adaptive design is in the list");
        spec_job(
            format!("{}/{label}", spec.name),
            &scale,
            spec.compile().expect("shipped spec compiles"),
            design,
            &Scenario::new("spec-determinism", scale.measure_secs),
        )
        .run()
        .expect("spec scenario runs")
    };
    let first = run();
    let second = run();
    assert!(first.total_committed() > 0);
    assert_eq!(
        serde::json::to_string_pretty(&first),
        serde::json::to_string_pretty(&second),
        "two in-process runs of the spec-driven experiment serialized differently"
    );
}
