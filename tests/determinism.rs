//! Determinism regression test.
//!
//! The virtual-time simulator promises bit-for-bit reproducibility: the
//! same experiment description (design spec + workload seed + scenario
//! timeline) must yield byte-identical serialized segment reports every
//! time it runs.  This test loads the shipped JSON experiment
//! (`examples/scenarios/adaptive_tatp.json`) through the same
//! [`atrapos_bench::replay::ReplayFile`] loader `atrapos replay` uses,
//! executes it twice in one process, and compares the serialized outcomes.
//!
//! The experiment is scaled down (fewer subscribers, shorter timeline)
//! so the test also runs quickly in debug builds; the *structure* —
//! design spec, event sequence, relative offsets — is exactly the shipped
//! file's.

use atrapos_bench::replay::ReplayFile;
use std::path::PathBuf;

fn shipped_replay() -> ReplayFile {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/scenarios/adaptive_tatp.json");
    ReplayFile::load(&path).unwrap_or_else(|e| panic!("{e}"))
}

/// Shrink the experiment for test budgets while keeping its structure.
fn shrink(replay: &mut ReplayFile, factor: f64) {
    replay.tatp_subscribers = (replay.tatp_subscribers / 10).max(1_000);
    replay.interval_secs /= factor;
    replay.scenario.duration_secs /= factor;
    for e in &mut replay.scenario.events {
        e.at_secs /= factor;
    }
}

#[test]
fn replay_experiment_is_byte_identical_across_runs() {
    let mut replay = shipped_replay();
    shrink(&mut replay, 5.0);

    let first = replay.run().expect("scenario runs");
    let second = replay.run().expect("scenario runs");

    let a = serde::json::to_string_pretty(&first);
    let b = serde::json::to_string_pretty(&second);
    assert!(
        first.total_committed() > 0,
        "determinism run committed nothing — the shrunken scale is broken"
    );
    assert_eq!(
        a, b,
        "two in-process runs of the same replay experiment serialized differently"
    );
}
