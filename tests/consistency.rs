//! Data-integrity checks: after running update workloads through the full
//! engine, the database contents satisfy the workloads' consistency
//! conditions on every design (TPC-C consistency condition 1-style checks).

use atrapos_engine::{AtraposConfig, AtraposDesign, CentralizedDesign, SystemDesign, Workload};
use atrapos_numa::{CoreId, CostModel, Machine, Topology};
use atrapos_storage::{Database, Key, TableId};
use atrapos_workloads::{Tpcc, TpccConfig, TpccTxn};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run_payments<D: SystemDesign>(
    design: &mut D,
    machine: &mut Machine,
    workload: &mut Tpcc,
    n: usize,
) {
    let mut rng = SmallRng::seed_from_u64(77);
    let cores = machine.topology.active_cores();
    let mut next = vec![0u64; cores.len()];
    for i in 0..n {
        let c = i % cores.len();
        let spec = workload.next_transaction(&mut rng, cores[c]);
        let out = design.execute(machine, &spec, cores[c], next[c]);
        assert!(out.committed, "payment {i} aborted");
        next[c] = out.end;
    }
}

/// TPC-C consistency condition 1: for every warehouse, `w_ytd` equals the
/// sum of its districts' `d_ytd` (both start at zero here and every Payment
/// adds the same amount to both).
fn check_ytd_consistency(db: &Database, warehouses: i64) {
    for w in 1..=warehouses {
        let w_ytd = db
            .table(TableId(0))
            .unwrap()
            .peek(&Key::int(w))
            .unwrap()
            .get(2)
            .as_int();
        let d_sum: i64 = (1..=10)
            .map(|d| {
                db.table(TableId(1))
                    .unwrap()
                    .peek(&Key::ints(&[w, d]))
                    .unwrap()
                    .get(2)
                    .as_int()
            })
            .sum();
        assert_eq!(w_ytd, d_sum, "warehouse {w} ytd mismatch");
    }
}

#[test]
fn tpcc_payment_preserves_ytd_consistency_on_centralized() {
    let mut machine = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
    let mut workload = Tpcc::new(TpccConfig::scaled(2));
    workload.set_single(TpccTxn::Payment);
    let mut design = CentralizedDesign::new(&machine, &workload);
    run_payments(&mut design, &mut machine, &mut workload, 200);
    check_ytd_consistency(design.database(), 2);
}

#[test]
fn tpcc_payment_preserves_ytd_consistency_on_atrapos() {
    let mut machine = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
    let mut workload = Tpcc::new(TpccConfig::scaled(2));
    workload.set_single(TpccTxn::Payment);
    let mut design = AtraposDesign::new(&machine, &workload, AtraposConfig::default());
    run_payments(&mut design, &mut machine, &mut workload, 200);
    check_ytd_consistency(design.database(), 2);
}

#[test]
fn tpcc_new_orders_create_matching_orders_and_lines() {
    let mut machine = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
    let mut workload = Tpcc::new(TpccConfig::scaled(2));
    workload.set_single(TpccTxn::NewOrder);
    let initial_orders = {
        let mut db = Database::new();
        atrapos_engine::workload::populate_all(&workload, &mut db);
        db.table(TableId(5)).unwrap().len()
    };
    let mut design = AtraposDesign::new(&machine, &workload, AtraposConfig::default());
    let mut rng = SmallRng::seed_from_u64(5);
    let mut now = 0;
    let n = 50;
    for _ in 0..n {
        let spec = workload.next_transaction(&mut rng, CoreId(0));
        let out = design.execute(&mut machine, &spec, CoreId(0), now);
        assert!(out.committed);
        now = out.end;
    }
    let db = design.database();
    // Every NewOrder inserted exactly one ORDER row and one NEW_ORDER row.
    assert_eq!(db.table(TableId(5)).unwrap().len(), initial_orders + n);
    // Order lines grew by the sum of the per-order item counts (5..=15 each).
    let new_lines = db.table(TableId(6)).unwrap().len() - initial_orders * 5;
    assert!(new_lines >= 5 * n && new_lines <= 15 * n);
}

#[test]
fn tatp_mix_has_low_abort_rate_and_preserves_row_counts() {
    use atrapos_workloads::{Tatp, TatpConfig};
    let mut machine = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
    let mut workload = Tatp::new(TatpConfig::scaled(500));
    let mut design = AtraposDesign::new(&machine, &workload, AtraposConfig::default());
    let mut rng = SmallRng::seed_from_u64(9);
    let mut now = 0;
    let mut aborted = 0;
    let n = 500;
    for _ in 0..n {
        let spec = workload.next_transaction(&mut rng, CoreId(1));
        let out = design.execute(&mut machine, &spec, CoreId(1), now);
        if !out.committed {
            aborted += 1;
        }
        now = out.end;
    }
    // Insert/Delete CallForwarding may fail per the TATP spec, but the vast
    // majority of the mix commits.
    assert!(aborted < n / 10, "too many aborts: {aborted}");
    // Subscriber rows are never created or destroyed by the mix.
    assert_eq!(design.database().table(TableId(0)).unwrap().len(), 500);
}
