//! Self-test of the `atrapos lint` gate: the committed workspace must be
//! lint-clean, and a workspace with injected violations must fail with
//! findings at the exact `file:line`.

use atrapos_lint::{lint_workspace, scan_source};
use std::path::{Path, PathBuf};

/// The workspace root, resolved from the bench crate's manifest dir so the
/// test works regardless of the invocation directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn committed_workspace_is_lint_clean() {
    let findings = lint_workspace(&workspace_root(), &[]).expect("walk succeeds");
    assert!(
        findings.is_empty(),
        "committed workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn only_filter_rejects_unknown_rules() {
    let err = lint_workspace(&workspace_root(), &["no-such-rule".to_string()])
        .expect_err("unknown rule must be rejected");
    assert!(err.contains("no-such-rule"));
}

/// Injecting a std `HashMap` and an `Instant::now` into a sim-visible
/// crate of a synthetic workspace is caught at the exact file and line —
/// the acceptance scenario for the CI gate.
#[test]
fn injected_violations_are_caught_at_exact_lines() {
    let dir = std::env::temp_dir().join(format!(
        "atrapos-lint-inject-{}-{}",
        std::process::id(),
        line!()
    ));
    let src_dir = dir.join("crates/engine/src");
    std::fs::create_dir_all(&src_dir).expect("create synthetic workspace");
    // Also create a harness-side crate: the same code there must NOT flag.
    let bench_dir = dir.join("crates/bench/src");
    std::fs::create_dir_all(&bench_dir).expect("create bench dir");

    let bad = "use std::collections::HashMap;\n\
               fn f() -> usize {\n\
               \x20   let m: HashMap<u32, u32> = HashMap::new();\n\
               \x20   m.len()\n\
               }\n\
               fn t() -> std::time::Instant {\n\
               \x20   std::time::Instant::now()\n\
               }\n";
    std::fs::write(src_dir.join("scratch.rs"), bad).expect("write scratch");
    std::fs::write(bench_dir.join("scratch.rs"), bad).expect("write bench scratch");

    let findings = lint_workspace(&dir, &[]).expect("walk succeeds");
    std::fs::remove_dir_all(&dir).ok();

    let lines: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    // Line 3 carries both the short-generic type and the ::new call.
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("crates/engine/src/scratch.rs:3: std-hash")),
        "missing std-hash finding: {lines:?}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("crates/engine/src/scratch.rs:7: wall-clock")),
        "missing wall-clock finding: {lines:?}"
    );
    assert!(
        !lines.iter().any(|l| l.contains("crates/bench/")),
        "harness-side crate must not flag: {lines:?}"
    );
}

/// The executor's hot-path markers genuinely cover the serving loops: a
/// simulated allocation added inside one is flagged.
#[test]
fn executor_hot_path_regions_are_live() {
    let path = workspace_root().join("crates/engine/src/executor.rs");
    let src = std::fs::read_to_string(path).expect("executor.rs readable");
    // Sanity: the committed file scans clean.
    assert!(scan_source("crates/engine/src/executor.rs", &src).is_empty());
    // Sabotage: append an allocation to the first line after the closed
    // loop's `counters.aborted += 1;` — inside the marked region.
    let sabotaged = src.replacen(
        "counters.aborted += 1;",
        "counters.aborted += 1; let _ = Vec::<u8>::new();",
        1,
    );
    assert_ne!(src, sabotaged, "sabotage anchor present");
    let findings = scan_source("crates/engine/src/executor.rs", &sabotaged);
    assert!(
        findings.iter().any(|f| f.rule == "hot-path-alloc"),
        "sabotaged executor loop must flag hot-path-alloc: {findings:?}"
    );
}
