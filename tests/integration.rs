//! Cross-crate integration tests: every system design executes every
//! workload end-to-end on the simulated multisocket machine, and the
//! headline qualitative results of the paper hold at test scale.

use atrapos_bench::harness::{measure, Scale};
use atrapos_engine::DesignSpec;
use atrapos_engine::Workload;
use atrapos_workloads::{
    MultiSiteUpdate, ReadOneRow, SimpleAb, Tatp, TatpConfig, TatpTxn, Tpcc, TpccConfig,
};

/// A reduced scale for debug-mode integration tests.
fn test_scale() -> Scale {
    Scale {
        micro_rows: 8_000,
        memory_rows: 8_000,
        tatp_subscribers: 2_000,
        tpcc_warehouses: 2,
        ycsb_records: 2_000,
        measure_secs: 0.004,
        phase_secs: 0.02,
        interval_min_secs: 0.005,
        interval_max_secs: 0.04,
        max_sockets: 2,
        cores_per_socket: 2,
    }
}

fn all_designs() -> Vec<DesignSpec> {
    vec![
        DesignSpec::Centralized,
        DesignSpec::extreme_shared_nothing(true),
        DesignSpec::coarse_shared_nothing(),
        DesignSpec::Plp,
        DesignSpec::atrapos(),
    ]
}

#[test]
fn every_design_runs_the_read_microbenchmark() {
    let s = test_scale();
    for spec in all_designs() {
        let stats = measure(
            2,
            2,
            &spec,
            Box::new(ReadOneRow::with_rows(s.micro_rows)),
            s.measure_secs,
        );
        assert!(stats.committed > 0, "{} committed nothing", spec.label());
        assert_eq!(stats.aborted, 0, "{} aborted reads", spec.label());
        assert!(stats.ipc > 0.0);
    }
}

#[test]
fn every_design_runs_the_multi_site_update_benchmark() {
    let s = test_scale();
    for spec in all_designs() {
        let stats = measure(
            2,
            2,
            &spec,
            Box::new(MultiSiteUpdate::new(s.micro_rows, 4, 1, 50)),
            s.measure_secs,
        );
        assert!(stats.committed > 0, "{} committed nothing", spec.label());
    }
}

#[test]
fn every_design_runs_tatp_and_tpcc() {
    let s = test_scale();
    for spec in all_designs() {
        let tatp = Tatp::new(TatpConfig::scaled(s.tatp_subscribers));
        let stats = measure(2, 2, &spec, Box::new(tatp), s.measure_secs);
        assert!(
            stats.committed > 0,
            "{} committed no TATP transactions",
            spec.label()
        );
        let tpcc = Tpcc::new(TpccConfig::scaled(s.tpcc_warehouses));
        let stats = measure(2, 2, &spec, Box::new(tpcc), s.measure_secs);
        assert!(
            stats.committed > 0,
            "{} committed no TPC-C transactions",
            spec.label()
        );
    }
}

#[test]
fn shared_nothing_scales_on_partitionable_work_centralized_does_not() {
    let s = test_scale();
    // The paper's Figure 2 workload is *perfectly partitionable*: every
    // client draws keys from its own site, so shared-nothing instances never
    // communicate (one site per core in the extreme configuration).
    let run = |spec: &DesignSpec, sockets: usize| {
        measure(
            sockets,
            2,
            spec,
            Box::new(ReadOneRow::partitionable(s.micro_rows, sockets * 2, 1)),
            s.measure_secs,
        )
        .throughput_tps
    };
    let sn1 = run(&DesignSpec::extreme_shared_nothing(false), 1);
    let sn4 = run(&DesignSpec::extreme_shared_nothing(false), 4);
    let ce1 = run(&DesignSpec::Centralized, 1);
    let ce4 = run(&DesignSpec::Centralized, 4);
    // Shared-nothing gains substantially from 4x the cores; the centralized
    // design gains much less (paper Figure 2's shape).
    let sn_speedup = sn4 / sn1;
    let ce_speedup = ce4 / ce1;
    assert!(sn_speedup > 2.5, "shared-nothing speedup {sn_speedup}");
    assert!(
        ce_speedup < sn_speedup * 0.7,
        "centralized speedup {ce_speedup} vs shared-nothing {sn_speedup}"
    );
}

#[test]
fn atrapos_beats_plp_on_tatp_at_multisocket_scale() {
    let s = test_scale();
    let tatp = || {
        let mut t = Tatp::new(TatpConfig::scaled(s.tatp_subscribers));
        t.set_single(TatpTxn::GetSubscriberData);
        Box::new(t) as Box<dyn Workload>
    };
    // The PLP penalty comes from centralized structures whose cache line
    // serializes cross-socket CAS traffic; the effect needs enough cores
    // hammering the line to show (the paper uses 80 cores, we use 16 here).
    let plp = measure(8, 2, &DesignSpec::Plp, tatp(), s.measure_secs);
    let atr = measure(8, 2, &DesignSpec::atrapos(), tatp(), s.measure_secs);
    assert!(
        atr.throughput_tps > plp.throughput_tps * 1.3,
        "ATraPos {} vs PLP {}",
        atr.throughput_tps,
        plp.throughput_tps
    );
}

#[test]
fn multi_site_transactions_hurt_shared_nothing_throughput() {
    let s = test_scale();
    let run = |pct| {
        measure(
            2,
            2,
            &DesignSpec::coarse_shared_nothing(),
            Box::new(MultiSiteUpdate::new(s.micro_rows, 2, 2, pct)),
            s.measure_secs,
        )
        .throughput_tps
    };
    let local_only = run(0);
    let all_multi = run(100);
    assert!(
        all_multi < local_only * 0.7,
        "100% multi-site {all_multi} should be well below 0% {local_only}"
    );
}

#[test]
fn simple_ab_workload_runs_on_partitioned_designs() {
    let s = test_scale();
    for spec in [DesignSpec::Plp, DesignSpec::atrapos()] {
        let stats = measure(
            2,
            2,
            &spec,
            Box::new(SimpleAb::new(s.micro_rows / 4)),
            s.measure_secs,
        );
        assert!(stats.committed > 0);
        assert_eq!(stats.aborted, 0);
    }
}
