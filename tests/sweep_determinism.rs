//! Parallel-lab determinism regression test.
//!
//! The experiment lab's contract: a job list produces byte-identical
//! serialized reports no matter how many OS threads run it.  This test
//! builds a miniature wallclock bundle — adaptive figure timelines plus a
//! TATP design sweep, the same job constructors the harness uses — and
//! runs it with 1 thread and with 4, comparing the full serialized
//! `ScenarioOutcome` of every component (committed counts, segment stats,
//! time series, design stats).

use atrapos_bench::figures::{
    fig10_scenario, fig11_scenario, figure_job, shipped_spec, spec_job, ycsb02_jobs,
};
use atrapos_bench::harness::{measurement_job, Scale};
use atrapos_engine::scenario::{Scenario, ScenarioOutcome};
use atrapos_engine::sweep::{run_sweep, SweepJob};
use atrapos_engine::DesignSpec;
use atrapos_workloads::{Tatp, TatpConfig, TatpTxn};

fn tiny_scale() -> Scale {
    let mut s = Scale::quick();
    s.tatp_subscribers = 4_000;
    s.ycsb_records = 4_000;
    s.measure_secs = 0.004;
    s.phase_secs = 0.004;
    s.interval_min_secs = 0.002;
    s.interval_max_secs = 0.008;
    s
}

/// A reduced wallclock bundle: four figure variants, a four-design TATP
/// sweep, the four-design ycsb02 drifting-hotspot timeline, and a
/// four-design spec-driven declarative workload (18 jobs).
fn bundle() -> Vec<SweepJob> {
    let scale = tiny_scale();
    let mut jobs = vec![
        figure_job(
            "fig10/static",
            &scale,
            false,
            TatpTxn::UpdateSubscriberData,
            &fig10_scenario(&scale),
        ),
        figure_job(
            "fig10/atrapos",
            &scale,
            true,
            TatpTxn::UpdateSubscriberData,
            &fig10_scenario(&scale),
        ),
        figure_job(
            "fig11/static",
            &scale,
            false,
            TatpTxn::GetSubscriberData,
            &fig11_scenario(&scale),
        ),
        figure_job(
            "fig11/atrapos",
            &scale,
            true,
            TatpTxn::GetSubscriberData,
            &fig11_scenario(&scale),
        ),
    ];
    for spec in [
        DesignSpec::Centralized,
        DesignSpec::coarse_shared_nothing(),
        DesignSpec::Plp,
        DesignSpec::atrapos(),
    ] {
        jobs.push(measurement_job(
            format!("tatp/{}", spec.label()),
            2,
            2,
            spec,
            Box::new(Tatp::new(TatpConfig::scaled(scale.tatp_subscribers))),
            scale.measure_secs,
        ));
    }
    jobs.extend(ycsb02_jobs(&scale));
    // Spec-driven jobs: a declarative workload compiled from a shipped
    // spec file, including tail inserts and range scans, must hold the
    // same thread-count contract as the hand-rolled modules.
    let spec = shipped_spec("scan_write.json").unwrap_or_else(|e| panic!("{e}"));
    let scenario = Scenario::new("sweep-determinism-spec", scale.measure_secs);
    for design in [
        DesignSpec::Centralized,
        DesignSpec::coarse_shared_nothing(),
        DesignSpec::Plp,
        DesignSpec::atrapos(),
    ] {
        jobs.push(spec_job(
            format!("spec/{}", design.label()),
            &scale,
            spec.compile().expect("shipped spec compiles"),
            design,
            &scenario,
        ));
    }
    jobs
}

fn serialized_report(threads: usize) -> Vec<(String, String)> {
    run_sweep(bundle(), threads)
        .into_iter()
        .map(|r| {
            let outcome: ScenarioOutcome = r
                .outcome
                .unwrap_or_else(|e| panic!("component '{}' failed: {e}", r.name));
            assert!(
                outcome.total_committed() > 0,
                "component '{}' committed nothing — the reduced scale is broken",
                r.name
            );
            (r.name, serde::json::to_string_pretty(&outcome))
        })
        .collect()
}

#[test]
fn sweep_reports_are_byte_identical_across_thread_counts() {
    let serial = serialized_report(1);
    let parallel = serialized_report(4);
    assert_eq!(serial.len(), parallel.len());
    for ((s_name, s_json), (p_name, p_json)) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s_name, p_name, "job order must not depend on threads");
        assert_eq!(
            s_json, p_json,
            "component '{s_name}' serialized differently under 1 vs 4 threads"
        );
    }
}
