//! Regression tests for the `atrapos wallclock --check` perf gate: the
//! baseline-selection rule, the verdicts, the extended report schema
//! (old entries without `meta` must keep loading), report-write error
//! propagation, and the strict wallclock argument parser.

use atrapos_bench::harness::run_meta;
use atrapos_bench::wallclock::{
    comparable, gate_last_run, select_baseline, speedup_vs_first, wallclock_path, write_report,
    ComponentTiming, GateOutcome, WallclockMeta, WallclockReport, WallclockRun, SCHEMA,
};
use atrapos_engine::HostFingerprint;

fn host(cpu_model: &str) -> HostFingerprint {
    HostFingerprint {
        os: "linux".to_string(),
        arch: "x86_64".to_string(),
        cpu_model: cpu_model.to_string(),
        cpus: 8,
    }
}

fn meta(cpu_model: &str) -> WallclockMeta {
    WallclockMeta {
        host: host(cpu_model),
        lab: run_meta(4, 10),
        source: "test".to_string(),
    }
}

/// A synthetic run whose components are `(name, wall_ms)` pairs.
fn run(
    label: &str,
    meta: Option<WallclockMeta>,
    threads: Option<usize>,
    smoke: bool,
    components: &[(&str, f64)],
) -> WallclockRun {
    WallclockRun {
        label: label.to_string(),
        unix_secs: 1_000_000,
        smoke,
        threads,
        meta,
        components: components
            .iter()
            .map(|(name, ms)| ComponentTiming {
                name: name.to_string(),
                wall_ms: *ms,
                committed: 42,
            })
            .collect(),
        total_ms: components.iter().map(|(_, ms)| ms).sum(),
        total_committed: 42 * components.len() as u64,
    }
}

#[test]
fn a_regressed_component_fails_the_gate() {
    let runs = vec![
        run(
            "baseline",
            Some(meta("cpu-a")),
            Some(1),
            false,
            &[("fig10/atrapos", 100.0), ("tatp/ATraPos", 100.0)],
        ),
        run(
            "current",
            Some(meta("cpu-a")),
            Some(1),
            false,
            &[("fig10/atrapos", 130.0), ("tatp/ATraPos", 100.0)],
        ),
    ];
    let outcome = gate_last_run(&runs, 10.0).unwrap();
    assert!(outcome.failed(), "a +30% component must fail at 10%");
    let GateOutcome::Compared {
        baseline_label,
        rows,
        unmatched,
    } = outcome
    else {
        panic!("expected a comparison")
    };
    assert_eq!(baseline_label, "baseline");
    assert!(unmatched.is_empty());
    // fig10 regressed; tatp and (since the total is 230 vs 200, +15%) the
    // TOTAL row both have verdicts of their own.
    assert!(rows[0].regressed, "fig10 +30% beyond 10%");
    assert!(!rows[1].regressed, "tatp unchanged");
    assert_eq!(rows[2].name, "TOTAL");
    assert!(rows[2].regressed, "total +15% beyond 10%");
    // A wider tolerance lets the same trajectory through.
    assert!(!gate_last_run(&runs, 50.0).unwrap().failed());
}

#[test]
fn an_improved_run_passes_the_gate() {
    let runs = vec![
        run(
            "baseline",
            Some(meta("cpu-a")),
            Some(1),
            false,
            &[("fig10/atrapos", 100.0)],
        ),
        run(
            "current",
            Some(meta("cpu-a")),
            Some(1),
            false,
            &[("fig10/atrapos", 60.0)],
        ),
    ];
    let outcome = gate_last_run(&runs, 10.0).unwrap();
    assert!(!outcome.failed(), "a 40% improvement must pass");
    let GateOutcome::Compared { rows, .. } = outcome else {
        panic!("expected a comparison")
    };
    assert!(rows[0].delta_pct() < -35.0);
}

#[test]
fn a_missing_baseline_passes_with_a_notice() {
    // Sole entry: nothing to compare against.
    let sole = vec![run(
        "first",
        Some(meta("cpu-a")),
        Some(1),
        false,
        &[("fig10/atrapos", 100.0)],
    )];
    match gate_last_run(&sole, 10.0).unwrap() {
        GateOutcome::NoBaseline { reason } => {
            assert!(reason.contains("no earlier entry"), "got: {reason}")
        }
        _ => panic!("sole entry must have no baseline"),
    }
    // An empty report is an error, not a pass.
    assert!(gate_last_run(&[], 10.0).is_err());
}

#[test]
fn a_foreign_host_baseline_is_never_selected() {
    let runs = vec![
        run(
            "other-machine",
            Some(meta("cpu-b")),
            Some(1),
            false,
            &[("fig10/atrapos", 10.0)],
        ),
        run(
            "current",
            Some(meta("cpu-a")),
            Some(1),
            false,
            &[("fig10/atrapos", 100.0)],
        ),
    ];
    let outcome = gate_last_run(&runs, 10.0).unwrap();
    assert!(!outcome.failed(), "a foreign host must not gate this run");
    match outcome {
        GateOutcome::NoBaseline { reason } => assert!(
            reason.contains("no earlier entry was recorded on this host"),
            "got: {reason}"
        ),
        _ => panic!("foreign-host entry must not be a baseline"),
    }
}

#[test]
fn a_thread_count_mismatch_is_rejected_and_explained() {
    // The CI shape: a --threads 1 smoke entry followed by a --threads 2
    // smoke entry.  Same host, but the thread counts differ, so the gate
    // must pass with a notice that names the mismatch.
    let runs = vec![
        run(
            "ci-smoke-t1",
            Some(meta("cpu-a")),
            Some(1),
            true,
            &[("fig10/atrapos", 100.0)],
        ),
        run(
            "ci-smoke-t2",
            Some(meta("cpu-a")),
            Some(2),
            true,
            &[("fig10/atrapos", 100.0)],
        ),
    ];
    match gate_last_run(&runs, 10.0).unwrap() {
        GateOutcome::NoBaseline { reason } => {
            assert!(reason.contains("thread-count mismatch"), "got: {reason}")
        }
        _ => panic!("t1 entry must not gate a t2 run"),
    }
}

#[test]
fn smoke_and_full_runs_never_gate_each_other() {
    let runs = vec![
        run(
            "full",
            Some(meta("cpu-a")),
            Some(1),
            false,
            &[("fig10/atrapos", 1000.0)],
        ),
        run(
            "smoke",
            Some(meta("cpu-a")),
            Some(1),
            true,
            &[("fig10/atrapos", 10.0)],
        ),
    ];
    match gate_last_run(&runs, 10.0).unwrap() {
        GateOutcome::NoBaseline { reason } => {
            assert!(reason.contains("full run"), "got: {reason}")
        }
        _ => panic!("a full run must not gate a smoke run"),
    }
}

#[test]
fn baseline_selection_prefers_the_most_recent_comparable_entry() {
    let old = run(
        "old",
        Some(meta("cpu-a")),
        Some(1),
        false,
        &[("fig10/atrapos", 100.0)],
    );
    let newer = run(
        "newer",
        Some(meta("cpu-a")),
        Some(1),
        false,
        &[("fig10/atrapos", 90.0)],
    );
    let unfingerprinted = run("legacy", None, None, false, &[("fig10/atrapos", 80.0)]);
    let foreign = run(
        "foreign",
        Some(meta("cpu-b")),
        Some(1),
        false,
        &[("fig10/atrapos", 70.0)],
    );
    let current = run(
        "current",
        Some(meta("cpu-a")),
        Some(1),
        false,
        &[("fig10/atrapos", 95.0)],
    );
    let pool = vec![old, newer, unfingerprinted, foreign];
    let selected = select_baseline(&pool, &current).expect("a baseline qualifies");
    assert_eq!(selected.label, "newer");
    // Legacy (meta-less) entries are never comparable, in either role.
    assert!(!comparable(&pool[2], &current));
    assert!(!comparable(&current, &pool[2]));
}

#[test]
fn new_and_vanished_components_are_listed_but_never_fail() {
    let runs = vec![
        run(
            "baseline",
            Some(meta("cpu-a")),
            Some(1),
            false,
            &[("fig10/atrapos", 100.0), ("old/component", 50.0)],
        ),
        run(
            "current",
            Some(meta("cpu-a")),
            Some(1),
            false,
            &[("fig10/atrapos", 100.0), ("ycsb/ATraPos", 50.0)],
        ),
    ];
    let outcome = gate_last_run(&runs, 10.0).unwrap();
    assert!(!outcome.failed(), "unmatched components must not fail");
    let GateOutcome::Compared { unmatched, .. } = outcome else {
        panic!("expected a comparison")
    };
    assert_eq!(unmatched.len(), 2);
    assert!(unmatched[0].contains("ycsb/ATraPos"));
    assert!(unmatched[1].contains("old/component"));
}

#[test]
fn speedup_vs_first_only_spans_comparable_full_runs() {
    let mk = |label: &str, m: Option<WallclockMeta>, threads, smoke, ms| {
        run(label, m, threads, smoke, &[("fig10/atrapos", ms)])
    };
    // Legacy serial entries plus smoke noise must not leak into the ratio:
    // only the two cpu-a/t1 full runs count (200 → 100 = 2.0x).
    let runs = vec![
        mk("legacy", None, None, false, 400.0),
        mk(
            "first-comparable",
            Some(meta("cpu-a")),
            Some(1),
            false,
            200.0,
        ),
        mk("smoke", Some(meta("cpu-a")), Some(1), true, 5.0),
        mk("foreign", Some(meta("cpu-b")), Some(1), false, 10.0),
        mk("newest", Some(meta("cpu-a")), Some(1), false, 100.0),
    ];
    let s = speedup_vs_first(&runs).expect("two comparable full runs");
    assert!((s - 2.0).abs() < 1e-9, "got {s}");
    // With a single comparable full run the ratio is undefined.
    assert_eq!(speedup_vs_first(&runs[3..]), None);
    assert_eq!(speedup_vs_first(&[]), None);
    // All-legacy trajectories (the pre-gate file shape) report null too.
    assert_eq!(speedup_vs_first(&runs[..1]), None);
}

#[test]
fn report_round_trips_through_serde_with_meta() {
    let report = WallclockReport {
        schema: SCHEMA.to_string(),
        runs: vec![run(
            "entry",
            Some(meta("cpu-a")),
            Some(2),
            false,
            &[("fig10/atrapos", 123.5)],
        )],
        speedup_vs_first: Some(1.25),
    };
    let text = serde::json::to_string_pretty(&report);
    // The extended schema's fields must actually serialize.
    for key in [
        "\"meta\"",
        "\"host\"",
        "\"cpu_model\"",
        "\"source\"",
        "\"threads\"",
    ] {
        assert!(text.contains(key), "serialized report lacks {key}");
    }
    let back: WallclockReport = serde::json::from_str(&text).unwrap();
    assert_eq!(back.schema, SCHEMA);
    assert_eq!(back.runs.len(), 1);
    let r = &back.runs[0];
    assert_eq!(r.meta, report.runs[0].meta);
    assert_eq!(r.threads, Some(2));
    assert_eq!(r.components[0].name, "fig10/atrapos");
    assert!((r.components[0].wall_ms - 123.5).abs() < 1e-9);
    assert_eq!(back.speedup_vs_first, Some(1.25));
}

#[test]
fn entries_without_meta_still_load() {
    // The committed trajectory predates the gate: its entries carry no
    // `meta` key (and early ones no `threads`).  They must deserialize
    // with `None` in both fields, not fail.
    let text = r#"{
        "schema": "atrapos-wallclock-v1",
        "runs": [{
            "label": "pre-refactor",
            "unix_secs": 1754000000,
            "smoke": false,
            "components": [{"name": "fig10/static", "wall_ms": 6500.0, "committed": 2536187}],
            "total_ms": 6500.0,
            "total_committed": 2536187
        }],
        "speedup_vs_first": null
    }"#;
    let report: WallclockReport = serde::json::from_str(text).unwrap();
    let r = &report.runs[0];
    assert_eq!(r.meta, None);
    assert_eq!(r.threads, None);
    assert_eq!(r.label, "pre-refactor");
    // And such an entry under test passes the gate with the legacy notice.
    match gate_last_run(&report.runs, 10.0).unwrap() {
        GateOutcome::NoBaseline { reason } => {
            assert!(reason.contains("no host fingerprint"), "got: {reason}")
        }
        _ => panic!("legacy entry must have no baseline"),
    }
}

#[test]
fn write_report_propagates_filesystem_errors() {
    // A regular file where the report *directory* should be: both the
    // directory creation and the write beneath it must surface as Err,
    // not an eprintln-and-pass.
    let clash = std::env::temp_dir().join("atrapos_gate_test_dir_clash");
    std::fs::write(&clash, b"not a directory").unwrap();
    let report = WallclockReport {
        schema: SCHEMA.to_string(),
        runs: Vec::new(),
        speedup_vs_first: None,
    };
    let err = write_report(&clash, &report).expect_err("writing into a file must fail");
    assert!(err.contains("atrapos_gate_test_dir_clash"), "got: {err}");
    std::fs::remove_file(&clash).unwrap();
}

#[test]
fn write_report_writes_loadable_json() {
    let dir = std::env::temp_dir().join("atrapos_gate_test_roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let report = WallclockReport {
        schema: SCHEMA.to_string(),
        runs: vec![run(
            "entry",
            Some(meta("cpu-a")),
            Some(1),
            false,
            &[("fig10/atrapos", 1.0)],
        )],
        speedup_vs_first: None,
    };
    let path = write_report(&dir, &report).unwrap();
    assert_eq!(path, wallclock_path(&dir));
    let back = atrapos_bench::wallclock::load_report(&path).unwrap();
    assert_eq!(back.runs.len(), 1);
    assert_eq!(back.runs[0].meta, report.runs[0].meta);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn load_report_rejects_corrupt_files() {
    let dir = std::env::temp_dir().join("atrapos_gate_test_corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = wallclock_path(&dir);
    std::fs::write(&path, b"{ not json").unwrap();
    let err = atrapos_bench::wallclock::load_report(&path).expect_err("corrupt file must error");
    assert!(err.contains("unreadable"), "got: {err}");
    std::fs::remove_dir_all(&dir).unwrap();
    // An absent file, by contrast, is an empty trajectory.
    let empty = atrapos_bench::wallclock::load_report(&wallclock_path(&dir)).unwrap();
    assert!(empty.runs.is_empty());
}

/// The strict argument parser: every malformed invocation from the bug
/// report must be rejected with a usage message, not silently ignored.
#[test]
fn malformed_wallclock_flags_are_rejected() {
    let reject = |args: &[&str], needle: &str| {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let err = atrapos_bench::wallclock::run(&args).expect_err("must reject");
        assert!(
            err.contains(needle),
            "args {args:?}: expected '{needle}' in: {err}"
        );
        assert!(err.contains("USAGE"), "args {args:?}: no usage in: {err}");
    };
    reject(&["--smok"], "unknown flag '--smok'");
    reject(&["--thread", "4"], "unknown flag '--thread'");
    reject(&["--label"], "flag '--label' needs a value");
    reject(&["--label", "--smoke"], "flag '--label' needs a value");
    reject(&["--check", "--smoke"], "does not apply to --check");
    reject(&["--check", "--tolerance", "nope"], "--tolerance needs");
    reject(&["--tolerance", "5"], "only applies to --check");
    reject(&["--threads", "0"], "--threads needs a positive integer");
    reject(&["--smoke", "--smoke"], "given more than once");
    reject(&["extra"], "unexpected argument 'extra'");
}

#[test]
fn the_committed_trajectory_still_loads_and_gates() {
    // The real accumulated file in the repo must load under the extended
    // schema and pass the gate (its own tolerance) — this is exactly what
    // CI's `atrapos wallclock --check` asserts from the repo root.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")) // crates/bench
        .join("../../reports/BENCH_wallclock.json");
    let report = atrapos_bench::wallclock::load_report(&path).unwrap();
    assert!(
        report.runs.len() >= 3,
        "committed trajectory lost entries ({})",
        report.runs.len()
    );
    assert_eq!(report.runs[0].meta, None, "pre-gate entries stay meta-less");
    let outcome = gate_last_run(&report.runs, 1e9).unwrap();
    assert!(
        !outcome.failed(),
        "committed trajectory must pass an arbitrarily wide gate"
    );
}
