//! Cross-design conservation invariants.
//!
//! Randomized short YCSB scenarios (proptest-generated mixes, skews, and
//! phase timelines) run over all four system designs, and every segment's
//! accounting must balance:
//!
//! * committed + aborted == attempted — every transaction the workload
//!   generated is accounted for, none double-counted, none lost;
//! * the per-socket committed tallies sum to the segment's committed
//!   count and cover exactly the machine's sockets;
//! * the throughput time series decomposes the segment: each bucket's
//!   `tps × width` is a whole number of transactions, and the bucket
//!   counts sum back to the committed count (minus at most one in-flight
//!   transaction per client straddling the segment end);
//! * the reported throughput is exactly committed / virtual seconds.
//!
//! A second family covers *open-loop* serving over proptest-generated
//! arrival timelines (Poisson, burst, diurnal) on the same four designs:
//! every generated arrival is admitted or rejected, the admission queue's
//! books balance across segments, and the latency histogram records
//! exactly the committed transactions with monotone quantiles.
//!
//! These hold by construction today; the test pins them against any
//! future executor or design change that breaks the books.

use atrapos_bench::harness::machine;
use atrapos_core::KeyDistribution;
use atrapos_engine::workload::WorkloadChange;
use atrapos_engine::{
    ArrivalProcess, DesignSpec, ExecutorConfig, ReconfigureError, RunStats, TableSpec,
    TransactionSpec, VirtualExecutor, Workload,
};
use atrapos_numa::CoreId;
use atrapos_storage::{Database, Key, TableId};
use atrapos_workloads::{Ycsb, YcsbConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wraps a workload and counts every generated transaction, so the test
/// knows exactly how many the executor *attempted* in a window.
struct Counting<W> {
    inner: W,
    generated: Arc<AtomicU64>,
}

impl<W: Workload> Workload for Counting<W> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn tables(&self) -> Vec<TableSpec> {
        self.inner.tables()
    }
    fn populate(&self, db: &mut Database, filter: &dyn Fn(TableId, &Key) -> bool) {
        self.inner.populate(db, filter)
    }
    fn next_transaction(&mut self, rng: &mut SmallRng, client: CoreId) -> TransactionSpec {
        self.generated.fetch_add(1, Ordering::Relaxed);
        self.inner.next_transaction(rng, client)
    }
    fn next_transaction_into(
        &mut self,
        rng: &mut SmallRng,
        client: CoreId,
        spec: &mut TransactionSpec,
    ) {
        self.generated.fetch_add(1, Ordering::Relaxed);
        self.inner.next_transaction_into(rng, client, spec)
    }
    fn reconfigure(&mut self, change: &WorkloadChange) -> Result<(), ReconfigureError> {
        self.inner.reconfigure(change)
    }
}

/// The four designs the invariants run over.
fn four_designs() -> Vec<DesignSpec> {
    vec![
        DesignSpec::Centralized,
        DesignSpec::coarse_shared_nothing(),
        DesignSpec::Plp,
        DesignSpec::atrapos(),
    ]
}

/// One proptest-generated experiment: a starting config plus a list of
/// (reconfiguration, phase length) steps.
#[derive(Debug, Clone)]
struct Case {
    config: YcsbConfig,
    seed: u64,
    phases: Vec<(Option<WorkloadChange>, f64)>,
}

fn change_strategy() -> impl Strategy<Value = WorkloadChange> {
    prop_oneof![
        (0.0f64..1.2).prop_map(|theta| WorkloadChange::ZipfianTheta { theta }),
        prop::sample::select(vec!["A", "B", "C", "D", "E", "F"]).prop_map(|n| {
            WorkloadChange::NamedMix {
                name: n.to_string(),
            }
        }),
        prop::sample::select(vec!["Read", "Update", "RMW"])
            .prop_map(|t| WorkloadChange::SingleTransaction { txn: t.to_string() }),
        (0.05f64..0.3, 0.5f64..0.95, 500u64..5_000).prop_map(|(d, a, p)| {
            WorkloadChange::Distribution {
                distribution: KeyDistribution::Drift {
                    data_fraction: d,
                    access_fraction: a,
                    period_txns: p,
                },
            }
        }),
    ]
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        prop::sample::select(vec!["A", "B", "C", "D", "E", "F"]),
        0.0f64..1.0,
        0u64..1_000,
        prop::collection::vec(
            (prop::option::of(change_strategy()), 0.001f64..0.004),
            1..=3,
        ),
    )
        .prop_map(|(mix, theta, seed, phases)| Case {
            config: YcsbConfig::named(mix, 1_500)
                .expect("core mix")
                .with_theta(theta),
            seed,
            phases,
        })
}

/// Check one segment's books against the number of generated specs.
fn check_segment(label: &str, stats: &RunStats, attempted: u64, clients: u64, start_secs: f64) {
    assert_eq!(
        stats.committed + stats.aborted,
        attempted,
        "{label}: committed + aborted must equal the {attempted} generated transactions"
    );
    assert_eq!(
        stats.committed_by_socket.iter().sum::<u64>(),
        stats.committed,
        "{label}: per-socket tallies must sum to the committed count"
    );
    let expected_tps = stats.committed as f64 / stats.virtual_secs;
    assert!(
        (stats.throughput_tps - expected_tps).abs() <= 1e-9 * expected_tps.max(1.0),
        "{label}: throughput {} != committed/secs {expected_tps}",
        stats.throughput_tps
    );
    // The time series decomposes the committed count: each bucket holds a
    // whole number of transactions and the buckets cover the whole
    // segment.  A transaction can finish exactly at (or beyond) the
    // segment end and be committed but not bucketed — at most one per
    // client.
    let mut bucketed = 0.0f64;
    let mut prev = start_secs;
    for p in &stats.time_series {
        let width = p.secs - prev;
        prev = p.secs;
        assert!(
            width > 0.0,
            "{label}: empty time-series bucket at {}",
            p.secs
        );
        let count = p.tps * width;
        assert!(
            (count - count.round()).abs() < 1e-3,
            "{label}: bucket at {} holds a fractional count {count}",
            p.secs
        );
        bucketed += count.round();
    }
    let bucketed = bucketed as u64;
    assert!(
        bucketed <= stats.committed,
        "{label}: bucket counts {bucketed} exceed committed {}",
        stats.committed
    );
    assert!(
        stats.committed - bucketed <= clients,
        "{label}: {} committed transactions missing from the time series \
         (more than one straddler per client)",
        stats.committed - bucketed
    );
    // Cycle-rounding accumulates sub-nanosecond drift per phase, hence
    // the loose-but-tiny tolerance.
    assert!(
        (prev - (start_secs + stats.virtual_secs)).abs() < 1e-8,
        "{label}: time series ends at {prev}, segment ends at {}",
        start_secs + stats.virtual_secs
    );
}

fn run_case(case: &Case, spec: &DesignSpec) {
    let m = machine(2, 2);
    let clients = m.topology.num_active_cores() as u64;
    let generated = Arc::new(AtomicU64::new(0));
    let workload = Counting {
        inner: Ycsb::new(case.config.clone()),
        generated: Arc::clone(&generated),
    };
    let design = spec.build(&m, &workload.inner);
    let mut ex = VirtualExecutor::new(
        m,
        design,
        Box::new(workload),
        ExecutorConfig {
            seed: case.seed,
            default_interval_secs: 0.001,
            time_series_bucket_secs: 0.001,
        },
    );
    let mut now = 0.0f64;
    for (i, (change, secs)) in case.phases.iter().enumerate() {
        if let Some(change) = change {
            ex.reconfigure_workload(change)
                .unwrap_or_else(|e| panic!("YCSB rejected {change}: {e}"));
        }
        let before = generated.load(Ordering::Relaxed);
        let stats = ex.run_for(*secs);
        let attempted = generated.load(Ordering::Relaxed) - before;
        let label = format!("{} phase {i}", spec.label());
        assert!(attempted > 0, "{label}: the executor generated nothing");
        check_segment(&label, &stats, attempted, clients, now);
        now += secs;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation holds for every design on every generated timeline.
    #[test]
    fn conservation_invariants_hold_across_designs(case in case_strategy()) {
        for spec in four_designs() {
            run_case(&case, &spec);
        }
    }
}

// ---------------------------------------------------------------------
// Open-loop conservation
// ---------------------------------------------------------------------

/// One proptest-generated open-loop experiment: an admission bound plus a
/// timeline of (arrival process, phase length) steps.
#[derive(Debug, Clone)]
struct OpenLoopCase {
    config: YcsbConfig,
    seed: u64,
    bound: u64,
    phases: Vec<(ArrivalProcess, f64)>,
}

/// Arrival processes sized for millisecond phases: rates from a trickle
/// to well past the tiny machine's capacity, so the generated timelines
/// cover both the empty-queue and the rejecting regimes.
fn arrival_strategy() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        2 => (10_000.0f64..5_000_000.0).prop_map(|rate_tps| ArrivalProcess::Poisson { rate_tps }),
        1 => (10_000.0f64..1_000_000.0, 2.0f64..8.0, 0.0005f64..0.002, 0.2f64..0.8).prop_map(
            |(base_tps, mult, period_secs, burst_fraction)| ArrivalProcess::Burst {
                base_tps,
                burst_tps: base_tps * mult,
                period_secs,
                burst_fraction,
            }
        ),
        1 => (10_000.0f64..1_000_000.0, 0.0f64..0.95, 0.0005f64..0.002).prop_map(
            |(base_tps, amplitude, period_secs)| ArrivalProcess::Diurnal {
                base_tps,
                amplitude,
                period_secs,
            }
        ),
    ]
}

fn open_loop_case_strategy() -> impl Strategy<Value = OpenLoopCase> {
    (
        prop::sample::select(vec!["A", "B", "C"]),
        0.0f64..1.0,
        0u64..1_000,
        1u64..64,
        prop::collection::vec((arrival_strategy(), 0.001f64..0.004), 1..=3),
    )
        .prop_map(|(mix, theta, seed, bound, phases)| OpenLoopCase {
            config: YcsbConfig::named(mix, 1_500)
                .expect("core mix")
                .with_theta(theta),
            seed,
            bound,
            phases,
        })
}

/// Check one open-loop segment's serving books.
fn check_open_segment(label: &str, stats: &RunStats, attempted: u64) {
    assert!(stats.open_loop, "{label}: segment must report open loop");
    assert_eq!(
        stats.offered,
        stats.admitted + stats.rejected,
        "{label}: every generated arrival is admitted or rejected"
    );
    assert_eq!(
        stats.admitted + stats.queue_depth_start,
        stats.committed + stats.aborted + stats.queue_depth_end,
        "{label}: queue accounting must balance"
    );
    assert_eq!(
        stats.committed + stats.aborted,
        attempted,
        "{label}: committed + aborted must equal the {attempted} generated transactions"
    );
    assert_eq!(
        stats.latency_histogram.count(),
        stats.committed,
        "{label}: the latency histogram records exactly the committed transactions"
    );
    assert!(
        stats.p50_latency_us <= stats.p95_latency_us
            && stats.p95_latency_us <= stats.p99_latency_us
            && stats.p99_latency_us <= stats.p999_latency_us,
        "{label}: latency quantiles must be monotone \
         (p50 {} / p95 {} / p99 {} / p999 {})",
        stats.p50_latency_us,
        stats.p95_latency_us,
        stats.p99_latency_us,
        stats.p999_latency_us
    );
    assert!(
        stats.queue_depth_max >= stats.queue_depth_start.max(stats.queue_depth_end),
        "{label}: the max queue depth bounds the endpoints"
    );
}

fn run_open_loop_case(case: &OpenLoopCase, spec: &DesignSpec) {
    let m = machine(2, 2);
    let generated = Arc::new(AtomicU64::new(0));
    let workload = Counting {
        inner: Ycsb::new(case.config.clone()),
        generated: Arc::clone(&generated),
    };
    let design = spec.build(&m, &workload.inner);
    let mut ex = VirtualExecutor::new(
        m,
        design,
        Box::new(workload),
        ExecutorConfig {
            seed: case.seed,
            default_interval_secs: 0.001,
            time_series_bucket_secs: 0.001,
        },
    );
    ex.set_admission_bound(case.bound);
    for (i, (process, secs)) in case.phases.iter().enumerate() {
        ex.set_arrival_process(*process);
        let before = generated.load(Ordering::Relaxed);
        let stats = ex.run_for(*secs);
        let attempted = generated.load(Ordering::Relaxed) - before;
        let label = format!("{} open-loop phase {i}", spec.label());
        check_open_segment(&label, &stats, attempted);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The open-loop serving books balance for every design on every
    /// generated arrival timeline: generated == admitted + rejected,
    /// admitted (plus the carried queue) == committed + aborted (plus the
    /// remaining queue), and the latency histogram covers exactly the
    /// committed transactions.
    #[test]
    fn open_loop_conservation_holds_across_designs(case in open_loop_case_strategy()) {
        for spec in four_designs() {
            run_open_loop_case(&case, &spec);
        }
    }
}

// ---------------------------------------------------------------------
// Random declarative-spec conservation
// ---------------------------------------------------------------------

use atrapos_workloads::spec::{ArgDef, OpDef, PhaseDef, TableDef, TemplateDef, WorkloadSpec};

/// One proptest-generated declarative experiment: a random valid
/// `WorkloadSpec` plus a reconfiguration timeline.  Specs are valid *by
/// construction* (every compiled one would also pass `validate()`), so
/// the family explores the compiler's whole op vocabulary — point reads,
/// two-phase RMWs, updates, head-key scans, tail inserts, composite-key
/// child tables with foreign keys — under the same conservation checks
/// as the hand-rolled YCSB family.
#[derive(Debug, Clone)]
struct SpecCase {
    spec: WorkloadSpec,
    seed: u64,
    phases: Vec<(Option<WorkloadChange>, f64)>,
}

fn spec_distribution_strategy() -> impl Strategy<Value = KeyDistribution> {
    prop_oneof![
        Just(KeyDistribution::Uniform),
        (0.05f64..0.5, 0.5f64..0.95).prop_map(|(data_fraction, access_fraction)| {
            KeyDistribution::Hotspot {
                data_fraction,
                access_fraction,
            }
        }),
        (0.2f64..1.1).prop_map(|theta| KeyDistribution::Zipfian { theta }),
        (0.05f64..0.3, 0.5f64..0.95, 200u64..2_000).prop_map(
            |(data_fraction, access_fraction, period_txns)| KeyDistribution::Drift {
                data_fraction,
                access_fraction,
                period_txns,
            }
        ),
    ]
}

/// One or two tables: a plain base table, optionally with a
/// composite-key child referencing it (the SimpleAb shape).
fn spec_tables_strategy() -> impl Strategy<Value = Vec<TableDef>> {
    (
        200i64..1_500,
        1usize..4,
        prop::option::of((2i64..5, 1usize..3, 100i64..800)),
    )
        .prop_map(|(keys, payload_fields, child)| {
            let mut tables = vec![TableDef {
                name: "t0".to_string(),
                keys,
                sub_rows: 1,
                payload_fields,
                parent: None,
            }];
            if let Some((sub_rows, child_payload, child_keys)) = child {
                tables.push(TableDef {
                    name: "t1".to_string(),
                    keys: child_keys.min(keys),
                    sub_rows,
                    payload_fields: child_payload,
                    parent: Some("t0".to_string()),
                });
            }
            tables
        })
}

/// Build template `i` over `tables[t]` with one of five op shapes.
/// Scans and inserts only target plain tables; a composite pick falls
/// back to a point read.
fn build_spec_template(
    i: usize,
    tables: &[TableDef],
    t: usize,
    shape: usize,
    weight: f64,
    distribution: KeyDistribution,
) -> TemplateDef {
    let table = &tables[t];
    let name = table.name.clone();
    let composite = table.sub_rows > 1;
    let arity: i64 = if composite { 2 } else { 1 };
    let args = vec![
        ArgDef::Key {
            name: "k".to_string(),
            table: name.clone(),
            distribution,
        },
        ArgDef::Uniform {
            name: "s".to_string(),
            lo: 0,
            hi: table.sub_rows.max(1),
        },
        ArgDef::Uniform {
            name: "f".to_string(),
            lo: arity,
            hi: arity + table.payload_fields as i64,
        },
        ArgDef::Uniform {
            name: "v".to_string(),
            lo: 0,
            hi: 1 << 20,
        },
        ArgDef::Uniform {
            name: "n".to_string(),
            lo: 1,
            hi: 20,
        },
    ];
    let key: Vec<String> = if composite {
        vec!["k".to_string(), "s".to_string()]
    } else {
        vec!["k".to_string()]
    };
    let read = OpDef::Read {
        table: name.clone(),
        key: key.clone(),
    };
    let update = OpDef::Update {
        table: name.clone(),
        key,
        field: "f".to_string(),
        value: "v".to_string(),
    };
    let phase = |ops: Vec<OpDef>| PhaseDef {
        ops,
        sync_bytes: None,
    };
    let shape = if composite && shape >= 3 { 0 } else { shape };
    let phases = match shape {
        0 => vec![phase(vec![read])],
        1 => vec![phase(vec![read]), phase(vec![update])],
        2 => vec![phase(vec![update])],
        3 => vec![phase(vec![OpDef::Scan {
            table: name,
            key: "k".to_string(),
            len: "n".to_string(),
        }])],
        _ => vec![phase(vec![OpDef::Insert { table: name }])],
    };
    TemplateDef {
        name: format!("tpl{i}"),
        weight,
        args,
        phases,
    }
}

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    // Table picks are generated as free indices and folded into range
    // with a modulo, since the shimmed proptest has no `prop_flat_map`
    // to parameterize one strategy by another's output.
    (
        spec_tables_strategy(),
        prop::collection::vec(
            (
                0usize..8,
                0usize..5,
                0.1f64..2.0,
                spec_distribution_strategy(),
            ),
            1..=3,
        ),
    )
        .prop_map(|(tables, raw)| WorkloadSpec {
            name: "random-spec".to_string(),
            templates: raw
                .into_iter()
                .enumerate()
                .map(|(i, (t, shape, weight, dist))| {
                    build_spec_template(i, &tables, t % tables.len(), shape, weight, dist)
                })
                .collect(),
            tables,
        })
}

/// Reconfigurations a compiled spec supports; single-template picks are
/// resolved to a declared name after generation.
#[derive(Debug, Clone)]
enum RawSpecChange {
    Theta(f64),
    Dist(KeyDistribution),
    Single(usize),
    StandardMix,
}

fn spec_change_strategy() -> impl Strategy<Value = RawSpecChange> {
    prop_oneof![
        (0.0f64..1.2).prop_map(RawSpecChange::Theta),
        spec_distribution_strategy().prop_map(RawSpecChange::Dist),
        (0usize..3).prop_map(RawSpecChange::Single),
        Just(RawSpecChange::StandardMix),
    ]
}

fn spec_case_strategy() -> impl Strategy<Value = SpecCase> {
    (
        spec_strategy(),
        0u64..1_000,
        prop::collection::vec(
            (prop::option::of(spec_change_strategy()), 0.001f64..0.004),
            1..=3,
        ),
    )
        .prop_map(|(spec, seed, raw_phases)| {
            let phases = raw_phases
                .into_iter()
                .map(|(change, secs)| {
                    let change = change.map(|c| match c {
                        RawSpecChange::Theta(theta) => WorkloadChange::ZipfianTheta { theta },
                        RawSpecChange::Dist(distribution) => {
                            WorkloadChange::Distribution { distribution }
                        }
                        RawSpecChange::Single(i) => WorkloadChange::SingleTransaction {
                            txn: format!("tpl{}", i % spec.templates.len()),
                        },
                        RawSpecChange::StandardMix => WorkloadChange::StandardMix,
                    });
                    (change, secs)
                })
                .collect();
            SpecCase { spec, seed, phases }
        })
}

fn run_spec_case(case: &SpecCase, design_spec: &DesignSpec) {
    assert_eq!(case.spec.validate(), Ok(()), "generated spec must be valid");
    let m = machine(2, 2);
    let clients = m.topology.num_active_cores() as u64;
    let generated = Arc::new(AtomicU64::new(0));
    let workload = Counting {
        inner: case.spec.compile().expect("generated spec compiles"),
        generated: Arc::clone(&generated),
    };
    let design = design_spec.build(&m, &workload.inner);
    let mut ex = VirtualExecutor::new(
        m,
        design,
        Box::new(workload),
        ExecutorConfig {
            seed: case.seed,
            default_interval_secs: 0.001,
            time_series_bucket_secs: 0.001,
        },
    );
    let mut now = 0.0f64;
    for (i, (change, secs)) in case.phases.iter().enumerate() {
        if let Some(change) = change {
            ex.reconfigure_workload(change)
                .unwrap_or_else(|e| panic!("compiled spec rejected {change}: {e}"));
        }
        let before = generated.load(Ordering::Relaxed);
        let stats = ex.run_for(*secs);
        let attempted = generated.load(Ordering::Relaxed) - before;
        let label = format!("{} spec phase {i}", design_spec.label());
        assert!(attempted > 0, "{label}: the executor generated nothing");
        check_segment(&label, &stats, attempted, clients, now);
        now += secs;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation holds for every design on every randomly generated
    /// declarative workload and reconfiguration timeline.
    #[test]
    fn spec_conservation_invariants_hold_across_designs(case in spec_case_strategy()) {
        for spec in four_designs() {
            run_spec_case(&case, &spec);
        }
    }
}
