//! Parity lockdown for the declarative workload engine.
//!
//! The `WorkloadSpec` compiler's contract is that a spec transcribing a
//! hand-rolled workload is *bit-identical* to it.  This suite pins that
//! contract for the two shipped transcriptions (`examples/specs/
//! ycsb_a.json` ↔ `Ycsb::workload_a`, `examples/specs/simple_ab.json` ↔
//! `SimpleAb`) at both ends of the stack:
//!
//! * **spec-stream digests** — FNV-1a over the debug form of 300
//!   generated transactions at two seeds (the PR-8 technique): any drift
//!   in mix selection, rng draw order, keys, classes, phase structure, or
//!   sync payloads changes the digest;
//! * **full-run outcomes** — the same scenario executed on all four
//!   YCSB-family designs with the spec-compiled and the hand-rolled
//!   workload must serialize byte-identically (committed counts
//!   included), so the equivalence survives population, routing,
//!   monitoring, and adaptation.

use atrapos_bench::figures::{spec_job, ycsb_designs};
use atrapos_bench::Scale;
use atrapos_engine::scenario::Scenario;
use atrapos_engine::Workload;
use atrapos_numa::CoreId;
use atrapos_workloads::spec::WorkloadSpec;
use atrapos_workloads::{SimpleAb, Ycsb, YcsbConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn shipped(file: &str) -> WorkloadSpec {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/specs")
        .join(file);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    WorkloadSpec::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// FNV-1a digest of `n` transactions' debug representations.
fn spec_stream_digest(w: &mut dyn Workload, seed: u64, n: usize) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..n {
        let spec = w.next_transaction(&mut rng, CoreId((i % 4) as u32));
        for byte in format!("{spec:?}").bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[test]
fn shipped_ycsb_a_spec_digest_matches_hand_rolled() {
    let spec = shipped("ycsb_a.json");
    let records = spec.tables[0].keys;
    for seed in [42u64, 1337] {
        let mut compiled = spec.compile().unwrap();
        let mut hand = Ycsb::new(YcsbConfig::workload_a(records));
        assert_eq!(
            spec_stream_digest(&mut compiled, seed, 300),
            spec_stream_digest(&mut hand, seed, 300),
            "seed {seed}: shipped ycsb_a.json diverged from the hand-rolled module"
        );
    }
}

#[test]
fn shipped_simple_ab_spec_digest_matches_hand_rolled() {
    let spec = shipped("simple_ab.json");
    let rows_a = spec.tables[0].keys;
    for seed in [42u64, 1337] {
        let mut compiled = spec.compile().unwrap();
        let mut hand = SimpleAb::new(rows_a);
        assert_eq!(
            spec_stream_digest(&mut compiled, seed, 300),
            spec_stream_digest(&mut hand, seed, 300),
            "seed {seed}: shipped simple_ab.json diverged from the hand-rolled module"
        );
    }
}

fn tiny_scale() -> Scale {
    let mut s = Scale::quick();
    s.ycsb_records = 4_000;
    s.measure_secs = 0.002;
    s.phase_secs = 0.004;
    s.interval_min_secs = 0.002;
    s.interval_max_secs = 0.008;
    s
}

/// Run `spec` and a hand-rolled reference across all four designs and
/// assert every design's entire serialized outcome — committed counts
/// included — is byte-identical.
fn assert_full_run_parity(spec: &WorkloadSpec, hand: impl Fn() -> Box<dyn Workload>, what: &str) {
    let scale = tiny_scale();
    let scenario = Scenario::new("spec-parity", scale.measure_secs);
    for (label, design) in ycsb_designs(&scale) {
        let spec_outcome = spec_job(
            format!("spec/{label}"),
            &scale,
            spec.compile().unwrap(),
            design.clone(),
            &scenario,
        )
        .run()
        .unwrap_or_else(|e| panic!("{what}/{label} (spec): {e}"));
        let mut hand_job = spec_job(
            format!("hand/{label}"),
            &scale,
            spec.compile().unwrap(),
            design,
            &scenario,
        );
        hand_job.workload = hand();
        let hand_outcome = hand_job
            .run()
            .unwrap_or_else(|e| panic!("{what}/{label} (hand-rolled): {e}"));
        assert!(
            spec_outcome.total_committed() > 0,
            "{what}/{label}: the parity run committed nothing"
        );
        assert_eq!(
            serde::json::to_string_pretty(&spec_outcome),
            serde::json::to_string_pretty(&hand_outcome),
            "{what}/{label}: spec-driven and hand-rolled outcomes differ"
        );
    }
}

#[test]
fn ycsb_a_full_run_outcomes_match_on_all_four_designs() {
    let spec = shipped("ycsb_a.json");
    let records = spec.tables[0].keys;
    assert_full_run_parity(
        &spec,
        || Box::new(Ycsb::new(YcsbConfig::workload_a(records))),
        "ycsb-a",
    );
}

#[test]
fn simple_ab_full_run_outcomes_match_on_all_four_designs() {
    let spec = shipped("simple_ab.json");
    let rows_a = spec.tables[0].keys;
    assert_full_run_parity(&spec, || Box::new(SimpleAb::new(rows_a)), "simple-ab");
}

/// Reconfiguration events keep working through the compiled engine: the
/// same theta change applied mid-digest leaves both sides identical.
#[test]
fn shipped_spec_reconfigures_in_lockstep_with_hand_rolled() {
    use atrapos_engine::workload::WorkloadChange;
    let spec = shipped("ycsb_a.json");
    let records = spec.tables[0].keys;
    let mut compiled = spec.compile().unwrap();
    let mut hand = Ycsb::new(YcsbConfig::workload_a(records));
    let change = WorkloadChange::ZipfianTheta { theta: 0.6 };
    compiled.reconfigure(&change).unwrap();
    hand.reconfigure(&change).unwrap();
    assert_eq!(
        spec_stream_digest(&mut compiled, 11, 200),
        spec_stream_digest(&mut hand, 11, 200),
        "theta reconfiguration broke spec/hand-rolled lockstep"
    );
}
