//! Golden-figure regression tests.
//!
//! The committed Figure 10–13 scenario timelines run at a fixed seed on a
//! reduced scale, and the per-segment `RunStats` (committed / aborted /
//! throughput / repartitionings) must match the snapshot JSON files under
//! `tests/goldens/`.  The virtual-time simulator is fully deterministic, so
//! any mismatch means a change to the *simulated behaviour* — which every
//! pure performance refactor must avoid (same seed ⇒ same simulated
//! stats).
//!
//! To regenerate the snapshots after an intentional behaviour change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p atrapos-bench --test golden_figures
//! ```
//!
//! then commit the updated files together with the change that explains
//! them.

use atrapos_bench::figures::{
    fig10_scenario, fig11_scenario, fig12_scenario, fig13_scenario, figure_executor, ycsb02_jobs,
};
use atrapos_bench::Scale;
use atrapos_engine::scenario::ScenarioOutcome;
use atrapos_engine::Scenario;
use atrapos_workloads::TatpTxn;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// The fixed scale the goldens are recorded at: small enough that the whole
/// suite runs in seconds even unoptimized, large enough that the adaptive
/// controller still observes several monitoring intervals per phase.
fn golden_scale() -> Scale {
    let mut s = Scale::quick();
    s.tatp_subscribers = 4_000;
    s.ycsb_records = 4_000;
    s.phase_secs = 0.01;
    s.interval_min_secs = 0.002;
    s.interval_max_secs = 0.008;
    s
}

/// One segment of a golden snapshot.  Floats are compared exactly: the
/// simulator is deterministic and JSON float printing round-trips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenSegment {
    label: String,
    start_secs: f64,
    committed: u64,
    aborted: u64,
    throughput_tps: f64,
    repartitions: u64,
}

/// A golden snapshot of one scenario × variant run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenFile {
    scenario: String,
    variant: String,
    segments: Vec<GoldenSegment>,
}

fn golden_of(outcome: &ScenarioOutcome, variant: &str) -> GoldenFile {
    GoldenFile {
        scenario: outcome.scenario.clone(),
        variant: variant.to_string(),
        segments: outcome
            .segments
            .iter()
            .map(|s| GoldenSegment {
                label: s.label.clone(),
                start_secs: s.start_secs,
                committed: s.stats.committed,
                aborted: s.stats.aborted,
                throughput_tps: s.stats.throughput_tps,
                repartitions: s.stats.repartitions,
            })
            .collect(),
    }
}

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

fn check_golden(name: &str, adaptive: bool, initial: TatpTxn, scenario: &Scenario) {
    let scale = golden_scale();
    let outcome = figure_executor(&scale, adaptive, initial)
        .run_scenario(scenario)
        .expect("figure scenario runs");
    let variant = if adaptive { "atrapos" } else { "static" };
    check_outcome_golden(name, variant, &outcome);
}

fn check_outcome_golden(name: &str, variant: &str, outcome: &ScenarioOutcome) {
    let got = golden_of(outcome, variant);
    assert!(
        got.segments.iter().any(|s| s.committed > 0),
        "{name}: golden run committed nothing — the scale is broken"
    );

    let path = goldens_dir().join(format!("{name}.json"));
    if std::env::var("UPDATE_GOLDENS")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        std::fs::write(&path, serde::json::to_string_pretty(&got)).expect("write golden");
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             run `UPDATE_GOLDENS=1 cargo test -p atrapos-bench --test golden_figures` to create it",
            path.display()
        )
    });
    let want: GoldenFile = serde::json::from_str(&text)
        .unwrap_or_else(|e| panic!("unparseable golden {}: {e}", path.display()));
    assert_eq!(
        want, got,
        "\n{name}: simulated per-segment stats diverged from the committed golden snapshot.\n\
         If this behaviour change is intentional, regenerate with\n\
         UPDATE_GOLDENS=1 cargo test -p atrapos-bench --test golden_figures\n"
    );
}

#[test]
fn fig10_static_matches_golden() {
    let scale = golden_scale();
    check_golden(
        "fig10_static",
        false,
        TatpTxn::UpdateSubscriberData,
        &fig10_scenario(&scale),
    );
}

#[test]
fn fig10_adaptive_matches_golden() {
    let scale = golden_scale();
    check_golden(
        "fig10_atrapos",
        true,
        TatpTxn::UpdateSubscriberData,
        &fig10_scenario(&scale),
    );
}

#[test]
fn fig11_static_matches_golden() {
    let scale = golden_scale();
    check_golden(
        "fig11_static",
        false,
        TatpTxn::GetSubscriberData,
        &fig11_scenario(&scale),
    );
}

#[test]
fn fig11_adaptive_matches_golden() {
    let scale = golden_scale();
    check_golden(
        "fig11_atrapos",
        true,
        TatpTxn::GetSubscriberData,
        &fig11_scenario(&scale),
    );
}

#[test]
fn fig12_static_matches_golden() {
    let scale = golden_scale();
    check_golden(
        "fig12_static",
        false,
        TatpTxn::GetSubscriberData,
        &fig12_scenario(&scale),
    );
}

#[test]
fn fig12_adaptive_matches_golden() {
    let scale = golden_scale();
    check_golden(
        "fig12_atrapos",
        true,
        TatpTxn::GetSubscriberData,
        &fig12_scenario(&scale),
    );
}

#[test]
fn fig13_adaptive_matches_golden() {
    let scale = golden_scale();
    check_golden(
        "fig13_atrapos",
        true,
        TatpTxn::GetNewDestination,
        &fig13_scenario(&scale),
    );
}

#[test]
fn ycsb02_matches_goldens_on_all_four_designs() {
    // The drifting-hotspot timeline, pinned per design: the golden file
    // name is derived from the job name (`ycsb02/<design label>`).
    for job in ycsb02_jobs(&golden_scale()) {
        let name = job.name.to_lowercase().replace(['/', '-', ' '], "_");
        let variant = job.name.clone();
        let outcome = job.run().expect("ycsb02 golden scenario runs");
        check_outcome_golden(&name, &variant, &outcome);
    }
}
