//! End-to-end tests of the adaptive behaviour: monitoring, repartitioning,
//! and reaction to skew and hardware changes through the full executor.

use atrapos_core::{AdaptiveInterval, ControllerConfig};
use atrapos_engine::{
    AtraposConfig, AtraposDesign, ExecutorConfig, SystemDesign, VirtualExecutor, WorkloadChange,
};
use atrapos_numa::{CostModel, Machine, SocketId, Topology};
use atrapos_workloads::{KeyDistribution, ReadOneRow, Tatp, TatpConfig, TatpTxn};

fn adaptive_executor(adaptive: bool) -> VirtualExecutor {
    let machine = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
    let workload = ReadOneRow::with_rows(4_000);
    let config = AtraposConfig {
        monitoring: adaptive,
        adaptive,
        controller: ControllerConfig {
            interval: AdaptiveInterval::new(0.002, 0.016, 0.10),
            ..ControllerConfig::default()
        },
        ..AtraposConfig::default()
    };
    let design: Box<dyn SystemDesign> = Box::new(AtraposDesign::new(&machine, &workload, config));
    VirtualExecutor::new(
        machine,
        design,
        Box::new(workload),
        ExecutorConfig {
            seed: 3,
            default_interval_secs: 0.002,
            time_series_bucket_secs: 0.002,
        },
    )
}

#[test]
fn skew_triggers_repartitioning_and_recovers_throughput() {
    let mut ex = adaptive_executor(true);
    let uniform = ex.run_for(0.01);
    // Introduce a heavy hotspot: 60% of accesses on 10% of the data.
    ex.reconfigure_workload(&WorkloadChange::Distribution {
        distribution: KeyDistribution::Hotspot {
            data_fraction: 0.1,
            access_fraction: 0.6,
        },
    })
    .expect("read-one-row supports distribution changes");
    let skew_first = ex.run_for(0.01);
    let skew_later = ex.run_for(0.02);
    assert!(uniform.committed > 0 && skew_first.committed > 0);
    // The adaptive system must eventually repartition under skew...
    let total_repartitions = skew_first.repartitions + skew_later.repartitions;
    assert!(
        total_repartitions >= 1,
        "expected at least one repartitioning under skew"
    );
    // ...and keep committing afterwards.
    assert!(skew_later.committed > 0);
}

#[test]
fn static_configuration_never_repartitions() {
    let mut ex = adaptive_executor(false);
    let a = ex.run_for(0.01);
    ex.reconfigure_workload(&WorkloadChange::Distribution {
        distribution: KeyDistribution::Hotspot {
            data_fraction: 0.1,
            access_fraction: 0.6,
        },
    })
    .expect("read-one-row supports distribution changes");
    let b = ex.run_for(0.02);
    assert_eq!(a.repartitions + b.repartitions, 0);
}

#[test]
fn socket_failure_is_survived_and_adapted_to() {
    let machine = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
    let mut workload = Tatp::new(TatpConfig::scaled(1_000));
    workload.set_single(TatpTxn::GetSubscriberData);
    let config = AtraposConfig {
        controller: ControllerConfig {
            interval: AdaptiveInterval::new(0.002, 0.016, 0.10),
            ..ControllerConfig::default()
        },
        ..AtraposConfig::default()
    };
    let design: Box<dyn SystemDesign> = Box::new(AtraposDesign::new(&machine, &workload, config));
    let mut ex = VirtualExecutor::new(
        machine,
        design,
        Box::new(workload),
        ExecutorConfig {
            seed: 5,
            default_interval_secs: 0.002,
            time_series_bucket_secs: 0.002,
        },
    );
    let before = ex.run_for(0.01);
    ex.fail_socket(SocketId(1));
    let after = ex.run_for(0.02);
    assert!(before.committed > 0);
    assert!(
        after.committed > 0,
        "system must keep running after the failure"
    );
    assert!(
        after.repartitions >= 1,
        "the controller should repartition for the surviving cores"
    );
    // The new scheme only uses the surviving socket's cores.
    ex.restore_socket(SocketId(1));
    let restored = ex.run_for(0.005);
    assert!(restored.committed > 0);
}

#[test]
fn monitoring_interval_relaxes_when_the_workload_is_stable() {
    let mut ex = adaptive_executor(true);
    // A long stable run: intervals should have grown beyond the minimum, so
    // fewer than (duration / min_interval) boundaries fire.  We only verify
    // the system stays healthy and commits throughout.
    let stats = ex.run_for(0.04);
    assert!(stats.committed > 0);
    assert_eq!(stats.aborted, 0);
}
