//! A self-contained, offline stand-in for the `serde` + `serde_json` stack.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate provides the subset of the serde data model the workspace
//! actually uses: a JSON-style [`Value`] tree, [`ser::Serialize`] /
//! [`de::Deserialize`] traits defined directly over that tree, derive
//! macros (re-exported from `serde_derive`), and a [`json`] module with
//! text parsing and printing.  The external representation matches
//! serde_json's defaults (externally tagged enums, structs as objects), so
//! scenario files written here stay readable and portable.
//!
//! Intentional simplifications relative to real serde:
//!
//! * Deserialization is owned-only (`Deserialize` has no lifetime); the one
//!   borrowed type in the workspace, `&'static str`, is materialized by
//!   leaking the parsed string (transaction-class labels are a small,
//!   bounded set).
//! * Maps serialize as arrays of `[key, value]` pairs, which round-trips
//!   non-string keys without a string-encoding convention.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (covers every integer field in the workspace).
    Int(i64),
    /// Unsigned integer that does not fit `i64`.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object field list.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Find `key` in an object field list (helper used by derived code).
pub fn get_field<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// "expected X" helper.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Self::new(format!("expected {what}, got {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization half of the data model.
pub mod ser {
    use super::Value;

    /// Convert `self` into a [`Value`] tree.
    pub trait Serialize {
        /// The value representation of `self`.
        fn to_value(&self) -> Value;
    }
}

/// Deserialization half of the data model.
pub mod de {
    use super::{Error, Value};

    /// Rebuild `Self` from a [`Value`] tree.
    pub trait Deserialize: Sized {
        /// Parse `Self` out of `v`.
        fn from_value(v: &Value) -> Result<Self, Error>;
    }
}

use de::Deserialize as De;
use ser::Serialize as Ser;

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Ser for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if let Ok(i) = i64::try_from(v) { Value::Int(i) } else { Value::UInt(*self as u64) }
            }
        }
        impl De for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::new(format!("integer {i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::new(format!("integer {u} out of range"))),
                    // Accept whole-valued floats, but only when the value is
                    // exactly representable in the target type — a bare cast
                    // would silently saturate (1e300 → MAX, -1.0 → 0 for
                    // unsigned targets).
                    Value::Float(f) if f.fract() == 0.0 => {
                        let i = *f as i128;
                        if i as f64 == *f && i != i128::MAX {
                            <$t>::try_from(i)
                                .map_err(|_| Error::new(format!("integer {f} out of range")))
                        } else {
                            Err(Error::new(format!("integer {f} out of range")))
                        }
                    }
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Ser for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl De for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Ser for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl De for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Ser for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl De for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Ser for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Transaction-class labels are `&'static str`; deserialization leaks the
/// parsed string.  The label set of any run is small and bounded, so the
/// leak is a few dozen short strings at most.
impl De for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl<T: Ser> Ser for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: De> De for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Ser> Ser for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Ser::to_value).collect())
    }
}

impl<T: De> De for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Ser> Ser for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Ser::to_value).collect())
    }
}

impl<T: De> De for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into())
    }
}

impl<T: Ser, const N: usize> Ser for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Ser::to_value).collect())
    }
}

impl<T: De + fmt::Debug, const N: usize> De for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! tuple_impl {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Ser),+> Ser for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: De),+> De for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array (tuple)", v))?;
                let expect = [$($i),+].len();
                if items.len() != expect {
                    return Err(Error::new(format!(
                        "expected tuple of {expect} elements, got {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

macro_rules! map_impl {
    ($name:ident, $($bound:tt)+) => {
        impl<K: Ser + $($bound)+, V: Ser> Ser for $name<K, V> {
            fn to_value(&self) -> Value {
                Value::Array(
                    self.iter()
                        .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                        .collect(),
                )
            }
        }
        impl<K: De + $($bound)+, V: De> De for $name<K, V> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array (map)", v))?;
                items
                    .iter()
                    .map(|pair| {
                        let kv = pair
                            .as_array()
                            .ok_or_else(|| Error::expected("[key, value] pair", pair))?;
                        if kv.len() != 2 {
                            return Err(Error::new("expected [key, value] pair"));
                        }
                        Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                    })
                    .collect()
            }
        }
    };
}

map_impl!(BTreeMap, Ord);

// HashMap is implemented by hand (not via the macro) so custom hashers —
// e.g. the storage crate's fast deterministic lock-table hasher — keep
// working with derived Serialize/Deserialize.
impl<K: Ser + std::hash::Hash + Eq, V: Ser, S: std::hash::BuildHasher> Ser for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: De + std::hash::Hash + Eq, V: De, S: std::hash::BuildHasher + Default> De
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::expected("array (map)", v))?;
        items
            .iter()
            .map(|pair| {
                let kv = pair
                    .as_array()
                    .ok_or_else(|| Error::expected("[key, value] pair", pair))?;
                if kv.len() != 2 {
                    return Err(Error::new("expected [key, value] pair"));
                }
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect()
    }
}

impl<T: Ser + ?Sized> Ser for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Ser + ?Sized> Ser for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: De> De for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

// ---------------------------------------------------------------------
// JSON text
// ---------------------------------------------------------------------

/// JSON parsing and printing over [`Value`].
pub mod json {
    use super::{de::Deserialize, ser::Serialize, Error, Value};

    /// Serialize to compact JSON text.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.to_value(), None, 0);
        out
    }

    /// Serialize to human-readable, indented JSON text.
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.to_value(), Some(2), 0);
        out
    }

    /// Parse a value of type `T` from JSON text.
    pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
        T::from_value(&parse(text)?)
    }

    /// Parse JSON text into a [`Value`] tree.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }

    fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` prints the shortest representation that parses
                    // back to the same f64 (round-trip safe).
                    out.push_str(&format!("{f:?}"));
                } else {
                    // JSON has no Infinity/NaN; null matches serde_json.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => write_seq(
                out,
                items.iter(),
                items.len(),
                '[',
                ']',
                indent,
                depth,
                |out, item, indent, depth| {
                    write_value(out, item, indent, depth);
                },
            ),
            Value::Object(fields) => write_seq(
                out,
                fields.iter(),
                fields.len(),
                '{',
                '}',
                indent,
                depth,
                |out, (k, v), indent, depth| {
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, v, indent, depth);
                },
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn write_seq<I: Iterator>(
        out: &mut String,
        items: I,
        len: usize,
        open: char,
        close: char,
        indent: Option<usize>,
        depth: usize,
        mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
    ) {
        out.push(open);
        if len == 0 {
            out.push(close);
            return;
        }
        for (i, item) in items.enumerate() {
            if i > 0 {
                out.push(',');
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * (depth + 1)));
            }
            write_item(out, item, indent, depth + 1);
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
        out.push(close);
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::new(format!(
                    "expected '{}' at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn eat_keyword(&mut self, kw: &str) -> bool {
            if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
                self.pos += kw.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
                Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'[') => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    loop {
                        self.skip_ws();
                        items.push(self.value()?);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b']') => {
                                self.pos += 1;
                                return Ok(Value::Array(items));
                            }
                            _ => {
                                return Err(Error::new(format!(
                                    "expected ',' or ']' at byte {}",
                                    self.pos
                                )))
                            }
                        }
                    }
                }
                Some(b'{') => {
                    self.pos += 1;
                    let mut fields = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b'}') {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.skip_ws();
                        self.eat(b':')?;
                        self.skip_ws();
                        let value = self.value()?;
                        fields.push((key, value));
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b'}') => {
                                self.pos += 1;
                                return Ok(Value::Object(fields));
                            }
                            _ => {
                                return Err(Error::new(format!(
                                    "expected ',' or '}}' at byte {}",
                                    self.pos
                                )))
                            }
                        }
                    }
                }
                Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
                _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
            }
        }

        fn hex_escape(&self, at: usize) -> Result<u32, Error> {
            let hex = self
                .bytes
                .get(at..at + 4)
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            u32::from_str_radix(
                std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?,
                16,
            )
            .map_err(|_| Error::new("bad \\u escape"))
        }

        fn string(&mut self) -> Result<String, Error> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(Error::new("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let code = self.hex_escape(self.pos + 1)?;
                                self.pos += 4;
                                // Standard JSON encoders emit non-BMP
                                // characters as UTF-16 surrogate pairs.
                                let code = if (0xD800..0xDC00).contains(&code) {
                                    if self.bytes.get(self.pos + 1..self.pos + 3)
                                        != Some(b"\\u".as_slice())
                                    {
                                        return Err(Error::new("lone \\u surrogate"));
                                    }
                                    let low = self.hex_escape(self.pos + 3)?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(Error::new("bad \\u surrogate pair"));
                                    }
                                    self.pos += 6;
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    code
                                };
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("bad \\u code point"))?,
                                );
                            }
                            _ => return Err(Error::new("bad escape")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Advance over one UTF-8 character.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| Error::new("invalid UTF-8"))?;
                        let c = rest.chars().next().expect("non-empty");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            let mut is_float = false;
            if self.peek() == Some(b'.') {
                is_float = true;
                self.pos += 1;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                is_float = true;
                self.pos += 1;
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.pos += 1;
                }
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::new("invalid number"))?;
            if is_float {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid number '{text}'")))
            } else if let Ok(i) = text.parse::<i64>() {
                Ok(Value::Int(i))
            } else if let Ok(u) = text.parse::<u64>() {
                Ok(Value::UInt(u))
            } else {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid number '{text}'")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_json_text() {
        let v = vec![(1u64, -5i64), (2, 7)];
        let text = json::to_string(&v);
        let back: Vec<(u64, i64)> = json::from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, -2.5e-9, 1e300] {
            let text = json::to_string(&f);
            let back: f64 = json::from_str(&text).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a \"quoted\"\nline\twith \\ unicode é".to_string();
        let text = json::to_string(&s);
        let back: String = json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn out_of_range_floats_do_not_saturate_integers() {
        // -1.0 must not become 0u64, 1e300 must not become MAX.
        assert!(json::from_str::<u64>("-1.0").is_err());
        assert!(json::from_str::<u16>("1e300").is_err());
        assert!(json::from_str::<i64>("1.5").is_err());
        assert_eq!(json::from_str::<u64>("42.0").unwrap(), 42);
        assert_eq!(json::from_str::<i32>("-7.0").unwrap(), -7);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        let back: String = json::from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "😀");
        assert!(json::from_str::<String>("\"\\ud83d\"").is_err());
        assert!(json::from_str::<String>("\"\\ud83d\\u0041\"").is_err());
    }

    #[test]
    fn maps_serialize_as_pair_arrays() {
        let mut m = BTreeMap::new();
        m.insert((1i64, 2i64), 3.5f64);
        let text = json::to_string(&m);
        assert_eq!(text, "[[[1,2],3.5]]");
        let back: BTreeMap<(i64, i64), f64> = json::from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let mut out = String::new();
        // Round-trip through the pretty printer.
        struct Raw(Value);
        impl ser::Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        out.push_str(&json::to_string_pretty(&Raw(v.clone())));
        assert!(out.contains("\n  \"a\": 1"));
        assert_eq!(json::parse(&out).unwrap(), v);
    }
}
