//! A self-contained, offline stand-in for the `bytes` crate: just enough
//! for order-preserving key encoding (`BytesMut` + `BufMut` + frozen
//! `Bytes`).

use std::ops::Deref;

/// An immutable byte string (comparable, cloneable).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the byte string is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

/// Byte-appending operations.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn put_u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_u64_preserves_order() {
        let mut a = BytesMut::with_capacity(8);
        a.put_u64(5);
        let mut b = BytesMut::new();
        b.put_u64(1 << 40);
        assert!(a.freeze() < b.freeze());
    }

    #[test]
    fn slices_and_bytes_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_slice(b"abc");
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], &[7, b'a', b'b', b'c']);
        assert_eq!(frozen.len(), 4);
        assert!(!frozen.is_empty());
    }
}
