//! A self-contained, offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: `SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool}` over
//! integer and float ranges.  The generator is a fixed xorshift64* —
//! deterministic across platforms and releases, which is exactly what the
//! virtual-time simulator needs (the real `rand` reserves the right to
//! change `SmallRng` between versions; this shim never will).

use std::ops::{Range, RangeInclusive};

/// Core random source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 random bits into [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + x) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let x = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + x) as $t
            }
        }
    )*};
}

int_range_impl!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let x = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Guard against rounding up to the exclusive bound.
                if x >= self.end as f64 {
                    self.start
                } else {
                    x as $t
                }
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Run the seed through splitmix64 so that small seeds (0, 1, 2…)
            // still start from well-mixed states.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self {
                state: z.max(1), // xorshift state must be non-zero
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&x));
            let y = rng.gen_range(1usize..=10);
            assert!((1..=10).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count() as f64 / n as f64;
        assert!((0.27..0.33).contains(&hits), "observed {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 60) == b.gen_range(0u64..1 << 60))
            .count();
        assert!(same < 4);
    }
}
