//! A self-contained, offline stand-in for the `criterion` benchmarking
//! crate.
//!
//! Provides the API surface this workspace's benches use (`criterion_group!`
//! / `criterion_main!`, `Criterion::bench_function`, `benchmark_group`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`).  Measurement is a simple
//! timed loop — good enough to spot order-of-magnitude regressions without
//! a statistics stack; absolute numbers are not comparable to real
//! criterion output.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the simple loop needs no warm-up.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Set the time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            budget: self.measurement_time / self.sample_size.max(1) as u32,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Runs and times the measured routine.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the per-benchmark budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            self.iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.budget {
                self.elapsed = elapsed;
                break;
            }
        }
    }

    /// Time `routine` over fresh inputs from `setup` (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.elapsed >= self.budget {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (no iterations)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iters);
        println!(
            "{name:<40} {:>12} ns/iter ({} iterations)",
            per_iter, self.iters
        );
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
