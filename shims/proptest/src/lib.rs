//! A self-contained, offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range / tuple / `prop_map` /
//! `prop_oneof!` / collection / option strategies, `any::<T>()`, and the
//! `prop_assert*` macros.  Cases are sampled from a deterministic RNG (no
//! shrinking): a failing case panics with the bound values visible in the
//! assert message, and re-running reproduces it exactly because the seed
//! only depends on the case index.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case random source (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build the RNG for one test case.
    pub fn for_case(case: u32) -> Self {
        let mut z = (case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self {
            state: (z ^ (z >> 31)).max(1),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recoverable test-case failure (helpers can return
/// `Result<_, TestCaseError>` and use `?` inside `proptest!` bodies).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// Fail the current case with a reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for TestCaseError {}

impl From<String> for TestCaseError {
    fn from(reason: String) -> Self {
        Self::fail(reason)
    }
}

impl From<&str> for TestCaseError {
    fn from(reason: &str) -> Self {
        Self::fail(reason)
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 48 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erase the strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut x = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if x < *w as u64 {
                return s.sample(rng);
            }
            x -= *w as u64;
        }
        self.arms.last().expect("non-empty union").1.sample(rng)
    }
}

macro_rules! int_strategy_impl {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

int_strategy_impl!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_strategy_impl {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let x = self.start as f64
                    + rng.next_f64() * (self.end as f64 - self.start as f64);
                if x >= self.end as f64 { self.start } else { x as $t }
            }
        }
    )*};
}

float_strategy_impl!(f32, f64);

macro_rules! tuple_strategy_impl {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy_impl! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int_impl {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int_impl!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, moderately sized values.
        (rng.next_f64() - 0.5) * 2e12
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + (rng.next_u64() as usize) % (self.max - self.min)
    }
}

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use std::collections::BTreeSet;

        /// Vectors with a size drawn from `size` and elements from
        /// `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// The strategy returned by [`vec()`](fn@vec).
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Ordered sets with a size drawn from `size`.
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// The strategy returned by [`btree_set`].
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.pick(rng);
                let mut out = BTreeSet::new();
                // Duplicates shrink the set; retry a bounded number of
                // times to respect the minimum size.
                let mut attempts = 0;
                while out.len() < target && attempts < 64 * target.max(1) {
                    out.insert(self.element.sample(rng));
                    attempts += 1;
                }
                out
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// `None` or `Some(inner)`, roughly evenly.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// The strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                if rng.next_u64() & 1 == 0 {
                    None
                } else {
                    Some(self.inner.sample(rng))
                }
            }
        }
    }

    /// Value-set sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Pick uniformly from a fixed list of values.
        pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        /// The strategy returned by [`select`].
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                self.options[(rng.next_u64() as usize) % self.options.len()].clone()
            }
        }
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Declare property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0i64..100, v in prop::collection::vec(any::<u64>(), 1..8)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)+
                // Run the body in a closure so helpers returning
                // `Result<_, TestCaseError>` compose with `?`.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    { $body };
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

/// Assert inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Weighted (or unweighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10i64..20, y in 1usize..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..5, 2..6),
            s in prop::collection::btree_set(0i64..1_000, 1..10),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 10);
        }

        #[test]
        fn map_and_oneof_compose(
            x in (0i64..10, 0i64..10).prop_map(|(a, b)| a + b),
            y in prop_oneof![3 => (0u32..1).prop_map(|_| "low"), 1 => (0u32..1).prop_map(|_| "high")],
        ) {
            prop_assert!((0..19).contains(&x));
            prop_assert!(y == "low" || y == "high");
        }

        #[test]
        fn options_appear_both_ways(o in prop::option::of(0i64..5)) {
            if let Some(x) = o {
                prop_assert!((0..5).contains(&x));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_is_accepted(x in any::<u64>()) {
            let _ = x;
        }
    }
}
