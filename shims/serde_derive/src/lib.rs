//! Derive macros for the offline `serde` shim.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! type shapes used in this workspace — named-field structs, tuple/newtype
//! structs, and enums with unit, tuple, and struct variants, with simple
//! generic parameters — by walking the raw token stream (no `syn`/`quote`;
//! the build environment has no network access to fetch them).
//!
//! The generated representation matches serde_json's defaults: structs are
//! objects, newtype structs are transparent, enums are externally tagged.
//! The only field attribute honoured is `#[serde(skip)]` (omit on
//! serialize, `Default::default()` on deserialize).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::ser::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derive `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------
// A minimal item model
// ---------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Named(Vec<Field>),
    /// Tuple struct/variant with this many slots.
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

struct GenericParam {
    name: String,
    bounds: String,
}

struct Item {
    name: String,
    generics: Vec<GenericParam>,
    kind: Kind,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let generics = parse_generics(&tokens, &mut i);

    // Skip an optional where-clause (not used in this workspace, but cheap
    // to tolerate): everything up to the body group or semicolon.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => break,
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_body(&tokens, &mut i)),
        "enum" => Kind::Enum(parse_enum_body(&tokens, &mut i)),
        other => panic!("serde derive: expected struct or enum, got '{other}'"),
    };

    Item {
        name,
        generics,
        kind,
    }
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    // Returns whether any skipped attribute was `#[serde(skip)]`.
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let body = g.stream().to_string().replace(' ', "");
            if body.starts_with("serde(") && body.contains("skip") {
                skip = true;
            }
            *i += 2;
        } else {
            break;
        }
    }
    skip
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde derive: expected identifier, got {other:?}"),
    }
}

fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<GenericParam> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut current: Vec<String> = Vec::new();
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push("<".into());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    break;
                }
                current.push(">".into());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                params.push(current.join(" "));
                current = Vec::new();
            }
            t => current.push(t.to_string()),
        }
        *i += 1;
    }
    if !current.is_empty() {
        params.push(current.join(" "));
    }
    params
        .into_iter()
        .map(|p| {
            let (name, bounds) = match p.split_once(':') {
                Some((n, b)) => (n.trim().to_string(), b.trim().to_string()),
                None => (p.trim().to_string(), String::new()),
            };
            GenericParam { name, bounds }
        })
        .collect()
}

fn parse_struct_body(tokens: &[TokenTree], i: &mut usize) -> Shape {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::Named(parse_named_fields(&inner))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::Tuple(count_tuple_slots(&inner))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("serde derive: unexpected struct body {other:?}"),
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(tokens, &mut i);
        let name = expect_ident(tokens, &mut i);
        // ':'
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected ':' after field '{name}', got {other:?}"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_slots(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut slots = 1;
    let mut depth = 0i32;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => slots += 1,
            _ => {}
        }
    }
    slots
}

fn parse_enum_body(tokens: &[TokenTree], i: &mut usize) -> Vec<Variant> {
    let group = match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde derive: expected enum body, got {other:?}"),
    };
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut j = 0;
    while j < inner.len() {
        skip_attrs(&inner, &mut j);
        if j >= inner.len() {
            break;
        }
        let name = expect_ident(&inner, &mut j);
        let shape = match inner.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                j += 1;
                Shape::Named(parse_named_fields(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                j += 1;
                Shape::Tuple(count_tuple_slots(&body))
            }
            _ => Shape::Unit,
        };
        // Skip to the next variant (past the separating comma).
        while j < inner.len() {
            if let TokenTree::Punct(p) = &inner[j] {
                if p.as_char() == ',' {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn impl_header(item: &Item, trait_path: &str, extra_bound: &str) -> String {
    let ty_args = if item.generics.is_empty() {
        String::new()
    } else {
        format!(
            "<{}>",
            item.generics
                .iter()
                .map(|g| g.name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        )
    };
    let impl_args = if item.generics.is_empty() {
        String::new()
    } else {
        format!(
            "<{}>",
            item.generics
                .iter()
                .map(|g| {
                    if g.bounds.is_empty() {
                        format!("{}: {extra_bound}", g.name)
                    } else {
                        format!("{}: {} + {extra_bound}", g.name, g.bounds)
                    }
                })
                .collect::<Vec<_>>()
                .join(", ")
        )
    };
    format!("impl{impl_args} {trait_path} for {}{ty_args}", item.name)
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let mut s =
                String::from("let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "fields.push((\"{0}\".to_string(), ::serde::ser::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(fields)");
            s
        }
        Kind::Struct(Shape::Tuple(1)) => "::serde::ser::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::ser::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let name = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "Self::{name} => ::serde::Value::Str(\"{name}\".to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "Self::{name}(x0) => ::serde::Value::Object(vec![(\"{name}\".to_string(), ::serde::ser::Serialize::to_value(x0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::ser::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "Self::{name}({}) => ::serde::Value::Object(vec![(\"{name}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut vfields: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "vfields.push((\"{0}\".to_string(), ::serde::ser::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "Self::{name} {{ {} }} => {{ {inner} ::serde::Value::Object(vec![(\"{name}\".to_string(), ::serde::Value::Object(vfields))]) }},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{} {{\n fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}",
        impl_header(item, "::serde::ser::Serialize", "::serde::ser::Serialize")
    )
}

/// Deserialization of one named field from an object binding.  An absent
/// key first tries `Value::Null` (so `Option<T>` fields default to `None`,
/// matching serde_json's external representation); only if that also fails
/// is the missing-field error reported.
fn field_from_object(field: &str, obj_binding: &str, ty: &str, variant: Option<&str>) -> String {
    let context = match variant {
        Some(v) => format!("{ty}::{v}"),
        None => ty.to_string(),
    };
    format!(
        "{field}: match ::serde::get_field({obj_binding}, \"{field}\") {{\n\
         Some(v) => ::serde::de::Deserialize::from_value(v)?,\n\
         None => ::serde::de::Deserialize::from_value(&::serde::Value::Null)\n\
         .map_err(|_| ::serde::Error::new(\"missing field '{field}' in {context}\"))?,\n\
         }},\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let mut s = format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object for {name}\", v))?;\n"
            );
            s.push_str("Ok(Self {\n");
            for f in fields {
                if f.skip {
                    s.push_str(&format!("{}: Default::default(),\n", f.name));
                } else {
                    s.push_str(&field_from_object(&f.name, "obj", &item.name, None));
                }
            }
            s.push_str("})");
            s
        }
        Kind::Struct(Shape::Tuple(1)) => {
            "Ok(Self(::serde::de::Deserialize::from_value(v)?))".to_string()
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let mut s = format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array for {name}\", v))?;\n\
                 if items.len() != {n} {{ return Err(::serde::Error::new(\"wrong arity for {name}\")); }}\n"
            );
            let slots: Vec<String> = (0..*n)
                .map(|k| format!("::serde::de::Deserialize::from_value(&items[{k}])?"))
                .collect();
            s.push_str(&format!("Ok(Self({}))", slots.join(", ")));
            s
        }
        Kind::Struct(Shape::Unit) => "Ok(Self)".to_string(),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok(Self::{vn}),\n"));
                        // Also accept the tagged-object form {"Variant": null}.
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => return Ok(Self::{vn}),\n"
                        ));
                    }
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => return Ok(Self::{vn}(::serde::de::Deserialize::from_value(payload)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let slots: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::de::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let items = payload.as_array().ok_or_else(|| ::serde::Error::expected(\"array for {name}::{vn}\", payload))?;\n\
                             if items.len() != {n} {{ return Err(::serde::Error::new(\"wrong arity for {name}::{vn}\")); }}\n\
                             return Ok(Self::{vn}({}));\n}}\n",
                            slots.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let mut inner = format!(
                            "let vobj = payload.as_object().ok_or_else(|| ::serde::Error::expected(\"object for {name}::{vn}\", payload))?;\n"
                        );
                        inner.push_str(&format!("return Ok(Self::{vn} {{\n"));
                        for f in fields {
                            if f.skip {
                                inner.push_str(&format!("{}: Default::default(),\n", f.name));
                            } else {
                                inner.push_str(&field_from_object(
                                    &f.name,
                                    "vobj",
                                    name,
                                    Some(vn),
                                ));
                            }
                        }
                        inner.push_str("});\n");
                        tagged_arms.push_str(&format!("\"{vn}\" => {{\n{inner}}}\n"));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(tag) => {{\n\
                 match tag.as_str() {{\n{unit_arms}\
                 other => return Err(::serde::Error::new(format!(\"unknown variant '{{other}}' of {name}\"))),\n\
                 }}\n\
                 }}\n\
                 ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (tag, payload) = &fields[0];\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => return Err(::serde::Error::new(format!(\"unknown variant '{{other}}' of {name}\"))),\n\
                 }}\n\
                 }}\n\
                 other => Err(::serde::Error::expected(\"enum {name} (string or single-key object)\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "{} {{\n fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n}}",
        impl_header(item, "::serde::de::Deserialize", "::serde::de::Deserialize")
    )
}
